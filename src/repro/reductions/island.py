"""The island-support reduction engine: FGMC from an SVC oracle (Section 5).

Lemmas 4.1, 4.3 and 4.4 (and their purely-endogenous adaptations of Section
6.1, as well as the max-SVC variant of Proposition 6.2) all share a single
construction, illustrated in Figure 2 of the paper:

1. add to the input database a minimal support ``S`` of (a part of) the query,
   split as ``S = S0 ⊎ S⁻`` where ``S0`` are the facts containing a
   distinguished constant ``a ∉ C``;
2. add ``i`` C-isomorphic copies ``S_1 … S_i`` of ``S0`` obtained by renaming
   ``a`` to fresh constants;
3. make a single fact ``μ ∈ S0`` and its copies ``μ_k`` endogenous, together
   with ``S⁻`` and the original endogenous facts, everything else exogenous;
4. ask the SVC oracle for the Shapley value of ``μ`` in each ``A_i``
   (``i = 0 … |Dn|``);
5. subtract the closed-form weight of the "μ is redundant for a local reason"
   coalitions (cases (1)/(2) of Lemma 5.1) and solve the resulting linear
   system — whose matrix is Bacher's Pascal-type matrix [2] — for the FGMC
   vector.

The individual lemmas differ only in which query the oracle answers, which
exogenous completion ``S'`` is added, and which support ``S`` is duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import comb

from ..analysis.decomposition import Decomposition, decompose
from ..analysis.islands import IslandWitness, find_island_support, find_unshared_constant_island
from ..analysis.leaks import find_leak_free_minimal_support, has_q_leak
from ..analysis.relevance import is_relevant_fact
from ..counting.dnf_counter import binomial_row, convolve, pad
from ..data.atoms import Fact, atoms_constants
from ..data.database import PartitionedDatabase
from ..data.renaming import c_isomorphic_renaming, rename_facts
from ..data.terms import Constant, FreshConstantFactory
from ..linalg import (
    assert_integer_vector,
    island_case12_weight,
    island_system_matrix,
    solve_linear_system,
)
from ..queries.base import BooleanQuery, ConjunctionQuery
from .errors import ReductionConsistencyError, ReductionHypothesisError
from .oracles import SVCOracle


@dataclass(frozen=True)
class IslandReductionSetup:
    """Everything the engine needs besides the input database.

    ``oracle_query`` is the query the SVC oracle answers; ``count_query`` is the
    query whose FGMC vector is being computed (they coincide for Lemmas 4.1 and
    6.2, and differ for Lemmas 4.3 / 4.4 and Proposition 6.1).
    ``support`` is the minimal support to be completed by ``μ``;
    ``duplicable_constant`` is the constant ``a ∉ C`` renamed in the copies;
    ``fixed_constants`` is the set of constants that C-isomorphic renamings must
    fix (``C`` — or ``C ∪ C'`` when an extra query is involved);
    ``extra_exogenous`` is the completion ``S'`` of Lemma 4.3 (empty otherwise).
    """

    oracle_query: BooleanQuery
    count_query: BooleanQuery
    support: frozenset[Fact]
    duplicable_constant: Constant
    fixed_constants: frozenset[Constant]
    extra_exogenous: frozenset[Fact] = frozenset()
    description: str = ""
    #: Whether the duplicated support ``S`` is a support of the *counted* query
    #: (Lemmas 4.1 / 4.3 / 6.2, Propositions 6.1 / 6.2).  In that case μ's
    #: marginal contribution is 1 exactly on the coalitions that are *not*
    #: generalized supports, and the right-hand side of the linear system is
    #: ``1 - Sh_i - Z_i``.  When ``S`` supports the *other* conjunct of a
    #: decomposition (Lemma 4.4), μ contributes exactly on the generalized
    #: supports of the counted conjunct and the right-hand side is ``Sh_i``.
    support_completes_count_query: bool = True


@dataclass
class IslandReductionReport:
    """Trace of one engine run (used by the Figure 2 benchmark and the examples)."""

    oracle_calls: int = 0
    construction_sizes: list[int] = field(default_factory=list)
    shapley_values: list[Fraction] = field(default_factory=list)
    removed_irrelevant_facts: int = 0
    renamed_database: bool = False


def fgmc_via_svc_island(pdb: PartitionedDatabase,
                        setup: IslandReductionSetup,
                        svc_oracle: SVCOracle,
                        require_pure_endogenous: bool = False,
                        report: "IslandReductionReport | None" = None) -> list[int]:
    """Run the island-support reduction and return the FGMC vector of ``count_query`` on ``pdb``.

    ``require_pure_endogenous`` asserts that the construction adds no exogenous
    fact (the Section 6.1 setting); it requires ``S0 = {μ}``, no extra exogenous
    completion, and a purely endogenous input database.
    """
    if report is None:
        report = IslandReductionReport()
    count_query = setup.count_query
    oracle_query = setup.oracle_query
    fixed = setup.fixed_constants

    n_original = len(pdb.endogenous)

    # Trivial case: the exogenous facts alone satisfy the (hom-closed) query.
    if count_query.is_hom_closed and count_query.evaluate(pdb.exogenous):
        return binomial_row(n_original)

    # -- Claim 5.1-style preprocessing -------------------------------------------------
    working = pdb
    removed = 0
    construction_constants = (atoms_constants(setup.support)
                              | atoms_constants(setup.extra_exogenous)
                              | fixed)
    if atoms_constants(working.all_facts) & (construction_constants - fixed):
        # Rename the input database C-isomorphically away from the construction.
        mapping = c_isomorphic_renaming(working.all_facts, fixed, construction_constants)
        working = working.rename_constants(mapping)
        report.renamed_database = True

    # Facts shared between the database and the construction can only be facts
    # entirely over the fixed constants.  Per hypothesis (2c) of Lemma 4.3 such
    # facts are irrelevant to the counted query, so endogenous copies can be
    # removed (and reinstated by a binomial convolution at the end).
    construction_facts = setup.support | setup.extra_exogenous
    colliding = working.all_facts & construction_facts
    if colliding:
        endogenous_collisions = colliding & working.endogenous
        for fact in sorted(endogenous_collisions):
            if count_query.is_hom_closed and is_relevant_fact(fact, count_query):
                raise ReductionHypothesisError(
                    f"fact {fact} is shared with the construction but relevant to the "
                    "counted query; hypothesis (2c) of Lemma 4.3 is violated")
        removed = len(endogenous_collisions)
        working = working.without(endogenous_collisions)
        # Exogenous collisions are harmless: the fact is exogenous on both sides.

    report.removed_irrelevant_facts = removed

    n = len(working.endogenous)
    support = setup.support
    s0 = frozenset(f for f in support if setup.duplicable_constant in f.constants())
    s_minus = support - s0
    if not s0:
        raise ReductionHypothesisError(
            f"the duplicable constant {setup.duplicable_constant} appears in no fact of the support")
    mu = min(s0)
    s = len(s_minus)

    if require_pure_endogenous:
        if working.exogenous:
            raise ReductionHypothesisError("purely endogenous reduction requires Dx = ∅")
        if setup.extra_exogenous:
            raise ReductionHypothesisError(
                "purely endogenous reduction cannot add the exogenous completion S'")
        if len(s0) != 1:
            raise ReductionHypothesisError(
                "purely endogenous reduction requires the duplicable constant to occur in "
                "exactly one fact of the support (Lemma 6.2)")

    # -- copies of S0 ------------------------------------------------------------------
    avoid = (atoms_constants(working.all_facts) | construction_constants)
    factory = FreshConstantFactory(avoid, prefix="copy")
    copies: list[tuple[frozenset[Fact], Fact]] = []
    for k in range(n):
        fresh = factory.fresh(f"a{k + 1}")
        renaming = {setup.duplicable_constant: fresh}
        copy_facts = rename_facts(s0, renaming)
        copy_mu = mu.substitute(renaming).to_fact()
        copies.append((copy_facts, copy_mu))

    # -- oracle calls -------------------------------------------------------------------
    right_hand_side: list[Fraction] = []
    for i in range(n + 1):
        endogenous = set(working.endogenous) | {mu} | set(s_minus)
        exogenous = set(working.exogenous) | set(setup.extra_exogenous) | (set(s0) - {mu})
        for copy_facts, copy_mu in copies[:i]:
            endogenous.add(copy_mu)
            exogenous |= set(copy_facts) - {copy_mu}
        overlap = endogenous & exogenous
        if overlap:
            raise ReductionHypothesisError(
                f"construction produced facts both endogenous and exogenous: {sorted(overlap)}")
        construction = PartitionedDatabase(endogenous, exogenous)
        if require_pure_endogenous and construction.exogenous:
            raise ReductionHypothesisError(
                "the construction added exogenous facts despite the purely endogenous mode")
        report.construction_sizes.append(len(construction))
        shapley = svc_oracle(oracle_query, construction, mu)
        report.oracle_calls += 1
        report.shapley_values.append(shapley)
        if setup.support_completes_count_query:
            # Cases (1)/(2) of Lemma 5.1 have a closed-form weight Z; what
            # remains of 1 - Sh_i is the weight of the generalized supports.
            z_weight = island_case12_weight(n, s, i)
            right_hand_side.append(Fraction(1) - shapley - z_weight)
        else:
            # Lemma 4.4 mode: μ completes the *other* conjunct, so it contributes
            # exactly on the coalitions whose D-part satisfies the counted
            # conjunct; Sh_i is directly the weighted sum of the counts.
            right_hand_side.append(shapley)

    # -- solve the Bacher system ----------------------------------------------------------
    matrix = island_system_matrix(n, s)
    solution = solve_linear_system(matrix, right_hand_side)
    try:
        counts = assert_integer_vector(solution, context=setup.description or "island reduction")
    except ValueError as error:
        raise ReductionConsistencyError(str(error)) from error
    for size, value in enumerate(counts):
        if value > comb(n, size):
            raise ReductionConsistencyError(
                f"count {value} of size-{size} supports exceeds C({n},{size})")

    # -- reinstate removed irrelevant facts ------------------------------------------------
    if removed:
        counts = pad(convolve(counts, binomial_row(removed)), n_original + 1)
    return counts


# ---------------------------------------------------------------------------
# Lemma 4.1 — pseudo-connected queries
# ---------------------------------------------------------------------------

def lemma_4_1_setup(query: BooleanQuery,
                    witness: "IslandWitness | None" = None) -> IslandReductionSetup:
    """Build the Lemma 4.1 setup for a pseudo-connected C-hom-closed query."""
    if witness is None:
        witness = find_island_support(query)
    if witness is None:
        raise ReductionHypothesisError(
            f"could not certify an island minimal support for {query}; "
            "Lemma 4.1 requires a pseudo-connected query")
    return IslandReductionSetup(
        oracle_query=query,
        count_query=query,
        support=witness.support,
        duplicable_constant=witness.duplicable_constant,
        fixed_constants=query.constants(),
        description=f"Lemma 4.1 ({witness.reason})")


def fgmc_via_svc_lemma_4_1(query: BooleanQuery, pdb: PartitionedDatabase,
                           svc_oracle: SVCOracle,
                           report: "IslandReductionReport | None" = None) -> list[int]:
    """``FGMC_q ≤poly SVC_q`` for pseudo-connected C-hom-closed queries (Lemma 4.1)."""
    return fgmc_via_svc_island(pdb, lemma_4_1_setup(query), svc_oracle, report=report)


# ---------------------------------------------------------------------------
# Lemma 4.3 — variable-connected q, auxiliary q'
# ---------------------------------------------------------------------------

def lemma_4_3_setup(query: BooleanQuery, auxiliary: BooleanQuery,
                    check_hypotheses: bool = True) -> IslandReductionSetup:
    """Build the Lemma 4.3 setup: FGMC of ``q`` from an SVC oracle for ``q ∧ q'``.

    ``query`` plays the role of the variable-connected ``q`` and ``auxiliary``
    the role of ``q'``.  Hypothesis checking verifies conditions (2a)–(2c) and
    (3) on the chosen canonical supports and raises
    :class:`ReductionHypothesisError` when they fail.
    """
    constants = query.constants()
    support = find_leak_free_minimal_support(query)
    if support is None:
        raise ReductionHypothesisError(
            f"every canonical minimal support of {query} has a q-leak (hypothesis (3) fails)")
    outside = sorted(atoms_constants(support) - constants - auxiliary.constants())
    if not outside:
        raise ReductionHypothesisError(
            "the chosen minimal support of q has no constant outside C ∪ C'")

    auxiliary_support: "frozenset[Fact] | None" = None
    for raw_candidate in sorted(auxiliary.canonical_minimal_supports(),
                                key=lambda s: (len(s), sorted(s))):
        # Canonical supports of q and q' are built independently and may reuse the
        # same frozen-variable constants; rename the candidate C'-isomorphically
        # away from the chosen support of q (this preserves it being a minimal
        # support of q' as well as hypotheses (2a)-(2c)).
        candidate = frozenset(rename_facts(
            raw_candidate,
            c_isomorphic_renaming(raw_candidate, auxiliary.constants(),
                                  atoms_constants(support) | constants | auxiliary.constants())))
        if check_hypotheses:
            if query.evaluate(candidate):
                continue  # (2a) fails for this candidate
            if has_q_leak(candidate, query):
                continue  # (2b) fails
            bad = False
            for fact in candidate:
                if is_relevant_fact(fact, query) and fact.constants() <= constants:
                    bad = True  # (2c) fails
                    break
            if bad:
                continue
        auxiliary_support = candidate
        break
    if auxiliary_support is None:
        raise ReductionHypothesisError(
            f"no canonical minimal support of the auxiliary query {auxiliary} satisfies "
            "hypotheses (2a)-(2c) of Lemma 4.3")

    return IslandReductionSetup(
        oracle_query=ConjunctionQuery((query, auxiliary)),
        count_query=query,
        support=support,
        duplicable_constant=outside[0],
        fixed_constants=constants | auxiliary.constants(),
        extra_exogenous=auxiliary_support,
        description="Lemma 4.3")


def fgmc_via_svc_lemma_4_3(query: BooleanQuery, auxiliary: BooleanQuery,
                           pdb: PartitionedDatabase, svc_oracle: SVCOracle,
                           check_hypotheses: bool = True,
                           report: "IslandReductionReport | None" = None) -> list[int]:
    """``FGMC_q ≤poly SVC_{q ∧ q'}`` (Lemma 4.3)."""
    setup = lemma_4_3_setup(query, auxiliary, check_hypotheses)
    return fgmc_via_svc_island(pdb, setup, svc_oracle, report=report)


# ---------------------------------------------------------------------------
# Lemma 4.4 — decomposable queries
# ---------------------------------------------------------------------------

def fgmc_via_svc_lemma_4_4(query: BooleanQuery, pdb: PartitionedDatabase,
                           svc_oracle: SVCOracle,
                           decomposition: "Decomposition | None" = None,
                           report: "IslandReductionReport | None" = None) -> list[int]:
    """``FGMC_q ≤poly SVC_q`` for decomposable queries (Lemma 4.4).

    The database is split according to which conjunct each fact is relevant to;
    the FGMC vector of each conjunct over its part is obtained with the island
    engine (the support duplicated is a minimal support of the *other*
    conjunct, so the oracle query is the full ``q``), and the two vectors are
    combined by convolution — the counting counterpart of multiplying the two
    SPPQE probabilities in the paper's proof.
    """
    if report is None:
        report = IslandReductionReport()
    if decomposition is None:
        decomposition = decompose(query)
    if decomposition is None:
        raise ReductionHypothesisError(
            f"no disjoint-vocabulary decomposition found for {query} (Lemma 4.4 requires one)")
    first, second = decomposition.first, decomposition.second

    # Split the database by relevance: no fact is relevant to both conjuncts, so facts
    # relevant to the second conjunct form D2 and everything else (including facts relevant
    # to neither) forms D1.  The exogenous facts are split the same way — the construction
    # used for one conjunct must not contain facts relevant to the other conjunct, otherwise
    # the distinguished fact μ could stop being the one that completes it.
    relevant_to_second = frozenset(f for f in pdb.all_facts if is_relevant_fact(f, second))
    part_one = PartitionedDatabase(pdb.endogenous - relevant_to_second,
                                   pdb.exogenous - relevant_to_second)
    part_two = PartitionedDatabase(pdb.endogenous & relevant_to_second,
                                   pdb.exogenous & relevant_to_second)

    vector_one = _lemma_4_4_half(first, second, part_one, query, svc_oracle, report)
    vector_two = _lemma_4_4_half(second, first, part_two, query, svc_oracle, report)
    combined = convolve(vector_one, vector_two)
    return pad(combined, len(pdb.endogenous) + 1)


def _lemma_4_4_half(counted: BooleanQuery, other: BooleanQuery,
                    part: PartitionedDatabase, full_query: BooleanQuery,
                    svc_oracle: SVCOracle, report: IslandReductionReport) -> list[int]:
    """FGMC of one conjunct over its part of the database, via the SVC oracle for the full query."""
    other_constants = other.constants()
    support: "frozenset[Fact] | None" = None
    constant: "Constant | None" = None
    for candidate in sorted(other.canonical_minimal_supports(),
                            key=lambda s: (len(s), sorted(s))):
        outside = sorted(atoms_constants(candidate) - other_constants - counted.constants())
        if outside:
            support, constant = candidate, outside[0]
            break
    if support is None or constant is None:
        raise ReductionHypothesisError(
            f"no minimal support of {other} has a constant outside C (Lemma 4.4 condition (1))")
    setup = IslandReductionSetup(
        oracle_query=full_query,
        count_query=counted,
        support=support,
        duplicable_constant=constant,
        fixed_constants=full_query.constants(),
        description="Lemma 4.4",
        support_completes_count_query=False)
    return fgmc_via_svc_island(part, setup, svc_oracle, report=report)


# ---------------------------------------------------------------------------
# Lemma 6.2 / Lemma D.1 — purely endogenous databases
# ---------------------------------------------------------------------------

def fmc_via_svcn_lemma_6_2(query: BooleanQuery, pdb: PartitionedDatabase,
                           svc_oracle: SVCOracle,
                           report: "IslandReductionReport | None" = None) -> list[int]:
    """``FMC_q ≤poly SVCn_q`` for queries with an unshared-constant island support (Lemma 6.2).

    The input database must be purely endogenous; the construction then adds no
    exogenous fact, so every oracle call is a legitimate ``SVCn`` instance.
    """
    if pdb.exogenous:
        raise ReductionHypothesisError(
            "FMC is defined on purely endogenous databases; the input has exogenous facts")
    witness = find_unshared_constant_island(query)
    if witness is None:
        raise ReductionHypothesisError(
            f"no island support with an unshared constant found for {query} (Lemma 6.2)")
    s0 = witness.facts_containing_constant()
    if len(s0) != 1:
        raise ReductionHypothesisError(
            "the unshared constant must occur in exactly one fact of the island support")
    setup = IslandReductionSetup(
        oracle_query=query,
        count_query=query,
        support=witness.support,
        duplicable_constant=witness.duplicable_constant,
        fixed_constants=query.constants(),
        description=f"Lemma 6.2 ({witness.reason})")
    return fgmc_via_svc_island(pdb, setup, svc_oracle,
                               require_pure_endogenous=True, report=report)


# ---------------------------------------------------------------------------
# Proposition 6.2 — max-SVC oracle
# ---------------------------------------------------------------------------

def fgmc_via_max_svc(query: BooleanQuery, pdb: PartitionedDatabase,
                     max_svc_oracle, witness: "IslandWitness | None" = None,
                     report: "IslandReductionReport | None" = None) -> list[int]:
    """``FGMC_q ≤poly max-SVC_q`` (Proposition 6.2).

    The construction of Lemma 4.1 is rerun with ``S0 := S`` and ``S⁻ := ∅``:
    the distinguished fact μ is then a generalized support on its own, so by
    Lemma 6.3 its Shapley value is maximal and the max-SVC oracle returns it
    even without being told which fact to look at.
    """
    if witness is None:
        witness = find_island_support(query)
    if witness is None:
        raise ReductionHypothesisError(
            f"could not certify an island minimal support for {query} (Proposition 6.2)")
    setup = IslandReductionSetup(
        oracle_query=query,
        count_query=query,
        support=witness.facts_containing_constant(),  # S0 := facts with a; see note below
        duplicable_constant=witness.duplicable_constant,
        fixed_constants=query.constants(),
        description="Proposition 6.2")
    # To realize S0 := S we make the remaining facts of the support exogenous
    # completions instead (they are then part of every A_i, exactly as S⁻ would
    # be, but exogenous — which only makes μ a singleton generalized support).
    remaining = witness.support - setup.support
    setup = IslandReductionSetup(
        oracle_query=setup.oracle_query,
        count_query=setup.count_query,
        support=setup.support,
        duplicable_constant=setup.duplicable_constant,
        fixed_constants=setup.fixed_constants,
        extra_exogenous=frozenset(remaining),
        description=setup.description)

    def adapted_oracle(oracle_query: BooleanQuery, construction: PartitionedDatabase,
                       fact: Fact) -> Fraction:
        best_fact, best_value = max_svc_oracle(oracle_query, construction)
        del best_fact  # Lemma 6.3: the value is attained by μ, whichever fact is returned.
        return best_value

    return fgmc_via_svc_island(pdb, setup, adapted_oracle, report=report)
