"""Errors raised by the reduction machinery."""

from __future__ import annotations


class ReductionHypothesisError(ValueError):
    """Raised when a reduction's structural hypotheses cannot be established.

    The reductions of Section 5 are only *correct* under the hypotheses of the
    corresponding lemma (pseudo-connectivity, leak-freeness, decomposability,
    ...).  When hypothesis checking is enabled and a hypothesis fails — or when
    a needed witness (island support, leak-free support, decomposition) cannot
    be found — this error is raised rather than silently returning wrong counts.
    """


class ReductionConsistencyError(RuntimeError):
    """Raised when a reduction produces non-integer or negative counts.

    This indicates either a violated hypothesis that went undetected or a bug;
    the exact linear algebra makes such failures loud instead of silent.
    """
