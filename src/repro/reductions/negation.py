"""Reductions for queries with negation (Section 6.2, Proposition 6.1, Lemma D.2).

For a self-join-free CQ with safe negation ``q`` whose positive part splits as
``q+ = q° ∧ q'`` with ``q°`` variable-connected, and whose negative atoms all
contain at least one variable, Proposition 6.1 gives::

    FGMC_{q° ∧ q°⁻}  ≤poly  SVC_q

where ``q°⁻`` keeps the negative atoms whose variables all lie in ``q°``.
The construction is the island-support construction run with the oracle query
``q`` and supports isomorphic to ``q°`` (duplicated part) and ``q'``
(exogenous completion).

Implementation restriction (documented): negative atoms over constants only
(the ``α_k`` of Lemma D.2) are not supported — they never arise for the
constant-free sjf-CQ¬ and 1RA⁻ examples of the paper, every negative atom
being required to contain a variable by safe negation plus constant-freeness.
"""

from __future__ import annotations

from ..analysis.connectivity import variable_connected_components_of_cq
from ..analysis.hierarchy import is_hierarchical_atoms
from ..data.atoms import atoms_constants
from ..data.database import PartitionedDatabase
from ..data.renaming import c_isomorphic_renaming, rename_facts
from ..queries.cq import ConjunctiveQuery
from ..queries.negation import ConjunctiveQueryWithNegation
from .errors import ReductionHypothesisError
from .island import IslandReductionReport, IslandReductionSetup, fgmc_via_svc_island
from .oracles import SVCOracle


def proposition_6_1_target(query: ConjunctiveQueryWithNegation
                           ) -> tuple[ConjunctiveQueryWithNegation, "ConjunctiveQuery | None"]:
    """The counted query ``q°_vc ∧ q⁻_vc`` of Proposition 6.1 and the leftover positive part.

    ``q°_vc`` is a maximal variable-connected subquery of the positive part
    (preferring a non-hierarchical one, as in Corollary 4.5); ``q⁻_vc`` keeps
    the negative atoms whose variables are all in ``q°_vc``.
    """
    positive = query.positive_query()
    components = variable_connected_components_of_cq(positive)
    chosen_index = 0
    for index, component in enumerate(components):
        if not is_hierarchical_atoms(component.atoms):
            chosen_index = index
            break
    chosen = components[chosen_index]
    rest_atoms = tuple(a for i, c in enumerate(components) if i != chosen_index for a in c.atoms)
    rest = ConjunctiveQuery(rest_atoms) if rest_atoms else None
    chosen_vars = chosen.variables()
    negative_vc = tuple(a for a in query.negative if a.variables() <= chosen_vars)
    target = ConjunctiveQueryWithNegation(chosen.atoms, negative_vc,
                                          require_self_join_free=False, require_safe=True)
    return target, rest


def fgmc_via_svc_proposition_6_1(query: ConjunctiveQueryWithNegation,
                                 pdb: PartitionedDatabase,
                                 svc_oracle: SVCOracle,
                                 report: "IslandReductionReport | None" = None
                                 ) -> tuple[ConjunctiveQueryWithNegation, list[int]]:
    """Proposition 6.1: compute ``FGMC_{q°_vc ∧ q⁻_vc}`` on ``pdb`` from an ``SVC_q`` oracle.

    Returns the counted query together with its FGMC vector (the counted query
    differs from ``q`` in general, so callers need to know what was counted).
    """
    for atom in query.negative:
        if not atom.variables():
            raise ReductionHypothesisError(
                "negative atoms over constants only (the α_k of Lemma D.2) are not supported "
                "by this implementation")
    target, rest = proposition_6_1_target(query)

    # Support S isomorphic to the chosen variable-connected positive part q°.
    positive_core = ConjunctiveQuery(target.positive)
    support, _ = positive_core.freeze()
    constants = query.constants()
    outside = sorted(atoms_constants(support) - constants)
    if not outside:
        raise ReductionHypothesisError(
            "the frozen support of the variable-connected part has no constant outside C")

    # Exogenous completion S' isomorphic to the leftover positive part q'.
    extra: frozenset = frozenset()
    if rest is not None:
        raw_extra, _ = rest.freeze()
        extra = frozenset(rename_facts(
            raw_extra,
            c_isomorphic_renaming(raw_extra, rest.constants(),
                                  atoms_constants(support) | constants)))

    setup = IslandReductionSetup(
        oracle_query=query,
        count_query=target,
        support=support,
        duplicable_constant=outside[0],
        fixed_constants=constants,
        extra_exogenous=extra,
        description="Proposition 6.1")
    vector = fgmc_via_svc_island(pdb, setup, svc_oracle, report=report)
    return target, vector


def is_component_guarded(query: ConjunctiveQueryWithNegation) -> bool:
    """Whether the query has "component-guarded negation" (Section 6.2).

    True iff the variables of every negative atom appear together in a single
    maximal variable-connected subquery of the positive part — the class for
    which Proposition 6.1 recaptures the full dichotomy of [12].
    """
    positive = query.positive_query()
    components = variable_connected_components_of_cq(positive)
    component_vars = [c.variables() for c in components]
    for atom in query.negative:
        atom_vars = atom.variables()
        if not atom_vars:
            continue
        if not any(atom_vars <= vars_ for vars_ in component_vars):
            return False
    return True
