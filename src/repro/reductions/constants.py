"""Shapley value of constants: the reductions of Proposition 6.3 (Section 6.4).

``SVCconst_q ≡poly FGMCconst_q`` for hom-closed queries.  The direction
``SVCconst ≤ FGMCconst`` mirrors Claim A.1 and is implemented directly in
:mod:`repro.core.constants`; this module implements the converse direction,
which adapts the island-support construction: a minimal support whose
constants outside ``C`` are collapsed to a single fresh constant behaves like a
duplicable singleton support when the players are constants, so no exogenous
*constant* needs to be added.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import Callable, Iterable

from ..data.atoms import Fact, atoms_constants
from ..data.database import Database
from ..data.renaming import rename_facts
from ..data.terms import Constant, FreshConstantFactory
from ..linalg import (
    assert_integer_vector,
    island_case12_weight,
    island_system_matrix,
    solve_linear_system,
)
from ..queries.base import BooleanQuery
from .errors import ReductionConsistencyError, ReductionHypothesisError

#: An SVCconst oracle: Shapley value of an endogenous constant of a database.
SVCConstOracle = Callable[
    [BooleanQuery, Database, frozenset[Constant], frozenset[Constant], Constant], Fraction]


def exact_svc_const_oracle(method: str = "auto") -> SVCConstOracle:
    """An SVCconst oracle backed by :func:`repro.core.constants.shapley_value_of_constant`."""
    from ..core.constants import shapley_value_of_constant

    def oracle(query: BooleanQuery, database: Database,
               endogenous: frozenset[Constant], exogenous: frozenset[Constant],
               constant: Constant) -> Fraction:
        return shapley_value_of_constant(query, database, constant, endogenous, exogenous,
                                         method=method)  # type: ignore[arg-type]

    return oracle


def collapsed_support(query: BooleanQuery, avoid: frozenset[Constant]
                      ) -> "tuple[frozenset[Fact], Constant] | None":
    """A support of the query whose constants outside C are collapsed to one fresh constant.

    Returns ``(facts, a_mu)`` or ``None`` when every minimal support lies
    entirely over the query constants (in which case FGMCconst is trivial).
    """
    constants = query.constants()
    for support in sorted(query.canonical_minimal_supports(), key=lambda s: (len(s), sorted(s))):
        outside = sorted(atoms_constants(support) - constants)
        if not outside:
            continue
        factory = FreshConstantFactory(avoid | constants | atoms_constants(support), prefix="cmu")
        a_mu = factory.fresh("a")
        renaming = {c: a_mu for c in outside}
        return frozenset(rename_facts(support, renaming)), a_mu
    return None


def fgmc_constants_via_svc_constants(query: BooleanQuery, database: Database,
                                     endogenous_constants: Iterable[Constant],
                                     exogenous_constants: "Iterable[Constant] | None",
                                     svc_const_oracle: SVCConstOracle) -> list[int]:
    """Proposition 6.3: ``FGMCconst_q ≤poly SVCconst_q`` for hom-closed queries.

    Requires the query constants to be exogenous (``C ⊆ Cx``) — the setting in
    which the proposition is stated — and the query to be hom-closed.
    """
    if not query.is_hom_closed:
        raise ReductionHypothesisError("Proposition 6.3 applies to hom-closed queries")
    endo = sorted(frozenset(endogenous_constants))
    exo = (database.constants() - frozenset(endo) if exogenous_constants is None
           else frozenset(exogenous_constants))
    if query.constants() & frozenset(endo):
        raise ReductionHypothesisError(
            "Proposition 6.3 requires the query constants to be exogenous (C ⊆ Cx)")
    n = len(endo)

    # Trivial cases: if the exogenous constants alone satisfy the query, every
    # coalition is a generalized support; if every minimal support lies over C,
    # satisfaction does not depend on the endogenous constants at all.
    if query.evaluate(database.restrict_to_constants(exo)):
        return [comb(n, k) for k in range(n + 1)]

    avoid = database.constants() | frozenset(endo) | exo
    collapsed = collapsed_support(query, avoid)
    if collapsed is None:
        # Every minimal support lies over C ⊆ Cx but Cx does not satisfy the query:
        # the facts over C present in the database never satisfy it, and no coalition
        # of endogenous constants can help, so no coalition is a generalized support.
        return [0] * (n + 1)
    support_facts, a_mu = collapsed

    # Copies of the collapsed support, one per possible i, each with its own fresh constant.
    factory = FreshConstantFactory(avoid | atoms_constants(support_facts) | {a_mu}, prefix="ccopy")
    copies: list[tuple[frozenset[Fact], Constant]] = []
    for k in range(n):
        fresh = factory.fresh(f"a{k + 1}")
        copies.append((frozenset(rename_facts(support_facts, {a_mu: fresh})), fresh))

    right_hand_side: list[Fraction] = []
    for i in range(n + 1):
        extended_facts = set(database.facts) | set(support_facts)
        endo_constants = set(endo) | {a_mu}
        for copy_facts, copy_constant in copies[:i]:
            extended_facts |= copy_facts
            endo_constants.add(copy_constant)
        extended_db = Database(extended_facts)
        # Exogenous constants: the original Cx plus every construction constant in C
        # (the support constants other than a_mu all lie in C by construction).
        exo_constants = exo | (atoms_constants(support_facts) - {a_mu})
        shapley = svc_const_oracle(query, extended_db, frozenset(endo_constants),
                                   frozenset(exo_constants), a_mu)
        z_weight = island_case12_weight(n, 0, i)
        right_hand_side.append(Fraction(1) - shapley - z_weight)

    matrix = island_system_matrix(n, 0)
    solution = solve_linear_system(matrix, right_hand_side)
    try:
        counts = assert_integer_vector(solution, context="Proposition 6.3")
    except ValueError as error:
        raise ReductionConsistencyError(str(error)) from error
    return counts
