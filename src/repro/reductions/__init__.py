"""The paper's reductions: Proposition 3.3, Lemmas 4.1/4.3/4.4, Section 6 variants."""

from .constants import (
    collapsed_support,
    exact_svc_const_oracle,
    fgmc_constants_via_svc_constants,
)
from .endogenous import count_fmc_oracle_calls, fgmc_via_fmc, svcn_via_fmc
from .errors import ReductionConsistencyError, ReductionHypothesisError
from .island import (
    IslandReductionReport,
    IslandReductionSetup,
    fgmc_via_max_svc,
    fgmc_via_svc_island,
    fgmc_via_svc_lemma_4_1,
    fgmc_via_svc_lemma_4_3,
    fgmc_via_svc_lemma_4_4,
    fmc_via_svcn_lemma_6_2,
    lemma_4_1_setup,
    lemma_4_3_setup,
)
from .negation import (
    fgmc_via_svc_proposition_6_1,
    is_component_guarded,
    proposition_6_1_target,
)
from .oracles import (
    CallCounter,
    exact_fgmc_oracle,
    exact_max_svc_oracle,
    exact_svc_oracle,
)
from .prop33 import (
    exact_sppqe_oracle,
    fgmc_via_sppqe,
    fmc_via_spqe,
    sppqe_via_fgmc,
    spqe_via_fmc,
    svc_via_fgmc,
    verify_fgmc_sppqe_equivalence,
)

__all__ = [
    "CallCounter",
    "IslandReductionReport",
    "IslandReductionSetup",
    "ReductionConsistencyError",
    "ReductionHypothesisError",
    "collapsed_support",
    "count_fmc_oracle_calls",
    "exact_fgmc_oracle",
    "exact_max_svc_oracle",
    "exact_sppqe_oracle",
    "exact_svc_const_oracle",
    "exact_svc_oracle",
    "fgmc_constants_via_svc_constants",
    "fgmc_via_fmc",
    "fgmc_via_max_svc",
    "fgmc_via_sppqe",
    "fgmc_via_svc_island",
    "fgmc_via_svc_lemma_4_1",
    "fgmc_via_svc_lemma_4_3",
    "fgmc_via_svc_lemma_4_4",
    "fgmc_via_svc_proposition_6_1",
    "fmc_via_spqe",
    "fmc_via_svcn_lemma_6_2",
    "is_component_guarded",
    "lemma_4_1_setup",
    "lemma_4_3_setup",
    "proposition_6_1_target",
    "sppqe_via_fgmc",
    "spqe_via_fmc",
    "svc_via_fgmc",
    "svcn_via_fmc",
    "verify_fgmc_sppqe_equivalence",
]
