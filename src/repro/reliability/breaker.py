"""A circuit breaker: stop hammering a failing path, probe until it heals.

The classic three-state machine, tuned for the serving tier's per-tenant /
per-lane use:

* **closed** — requests flow; ``failure_threshold`` *consecutive* failures
  trip the breaker,
* **open** — requests are refused instantly (the serving layer turns this
  into a structured 503 with ``retry_after_s``, or degrades the request one
  rung down the ladder); after ``reset_timeout_s`` the breaker half-opens,
* **half-open** — exactly ONE probe request is let through; its success
  closes the breaker (full recovery), its failure re-opens it for another
  full timeout.

The clock is injectable (``clock=time.monotonic`` by default) so the whole
trip → wait → half-open → recover cycle is testable deterministically,
without sleeping.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time

from ..errors import ConfigError

#: The breaker states, for reference.
STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """One failure domain's breaker (e.g. one ``tenant/lane`` pair)."""

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0, clock=time.monotonic):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout_s <= 0:
            raise ConfigError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: "float | None" = None
        self._probing = False
        self._trips = 0
        self._successes = 0
        self._failures = 0

    def _tick(self) -> None:
        """open → half_open once the reset timeout has elapsed (lock held)."""
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.reset_timeout_s):
            self._state = "half_open"
            self._probing = False

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._probing = False
        self._trips += 1

    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half_open"`` (time-aware)."""
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """Whether a request may proceed now.

        Closed: always.  Open: never (until the timeout half-opens it).
        Half-open: the first caller gets the probe slot, everyone else is
        refused until the probe reports back.
        """
        with self._lock:
            self._tick()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """A request succeeded: reset to closed (a probe success heals fully)."""
        with self._lock:
            self._successes += 1
            self._state = "closed"
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """A request failed: count toward the trip, or re-open a failed probe."""
        with self._lock:
            self._tick()
            self._failures += 1
            if self._state == "half_open":
                self._trip()        # the probe failed: back to open, full wait
                return
            self._consecutive_failures += 1
            if (self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    def retry_after_s(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        with self._lock:
            self._tick()
            if self._state != "open":
                return 0.0
            return max(0.0, self.reset_timeout_s
                       - (self._clock() - self._opened_at))

    def snapshot(self) -> dict:
        """A JSON-serialisable view (state, counters, time to half-open)."""
        with self._lock:
            self._tick()
            remaining = 0.0
            if self._state == "open":
                remaining = max(0.0, self.reset_timeout_s
                                - (self._clock() - self._opened_at))
            return {"state": self._state,
                    "consecutive_failures": self._consecutive_failures,
                    "trips": self._trips,
                    "successes": self._successes,
                    "failures": self._failures,
                    "retry_after_s": round(remaining, 6)}


class BreakerRegistry:
    """Lazily created breakers by key (the service keys on ``tenant/lane``).

    One shared configuration; breakers materialise on first use so idle
    tenant/lane pairs cost nothing and the ``/healthz`` surface only lists
    domains that have actually served traffic.
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0, clock=time.monotonic):
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout_s=self.reset_timeout_s, clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> dict[str, dict]:
        """Every materialised breaker's snapshot, keyed and sorted."""
        with self._lock:
            breakers = dict(self._breakers)
        return {key: breakers[key].snapshot() for key in sorted(breakers)}

    def states(self) -> dict[str, str]:
        """Just the states (what health rollups consume)."""
        return {key: snap["state"] for key, snap in self.snapshot().items()}


__all__ = ["BreakerRegistry", "CircuitBreaker", "STATES"]
