"""Bounded, deterministic retry-with-backoff.

Transient faults — a full disk that a log rotation is about to free, an NFS
hiccup, a worker process the OS reaped — deserve a *bounded* number of
retries with a *deterministic* backoff: unbounded retries turn one fault into
a hang, and randomised jitter turns a reproducible failure schedule into a
flaky one (the fault-injection harness replays schedules by seed, so the
retry layer must be replayable too).

:class:`RetryPolicy` is pure data (frozen, picklable — it rides into worker
pools); :func:`call_with_retry` is the one execution helper, used by
``DiskStore.put`` and the per-island pool driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure.

    ``max_attempts`` counts the *total* tries (1 = no retry at all);
    backoff before retry ``k`` (0-based) is ``backoff_s * factor**k``, capped
    at ``max_backoff_s`` — exponential, deterministic, no jitter.
    """

    max_attempts: int = 3
    backoff_s: float = 0.01
    factor: float = 2.0
    max_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ConfigError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.factor < 1.0:
            raise ConfigError(f"factor must be >= 1, got {self.factor}")
        if self.max_backoff_s < 0:
            raise ConfigError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}")

    def delay_s(self, attempt: int) -> float:
        """The backoff before retry ``attempt`` (0-based, after a failure)."""
        return min(self.backoff_s * self.factor ** attempt, self.max_backoff_s)


#: No retries at all (callers that want plain single-shot semantics).
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_retry(fn, policy: RetryPolicy, *,
                    retry_on: "tuple[type[BaseException], ...]" = (OSError,),
                    on_retry=None, sleep=time.sleep):
    """Run ``fn()`` under the policy; re-raise the last error when exhausted.

    ``on_retry(attempt, error)`` is called before each backoff (counters,
    logging); ``sleep`` is injectable so tests run at full speed.
    """
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as error:
            if attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            delay = policy.delay_s(attempt)
            if delay > 0:
                sleep(delay)


__all__ = ["NO_RETRY", "RetryPolicy", "call_with_retry"]
