"""A deterministic, seeded fault-injection harness.

The production layers of this package — the disk-backed artifact store, the
process-pool sharding, the circuit compiler, the serving executor — each carry
*named injection points*: one cheap :func:`check` (or :func:`mangle`) call at
the exact place where the real world fails.  With no injector active the call
is a module-global ``None`` test and costs nothing measurable
(``benchmarks/bench_resilience.py`` asserts < 5 % on the serving shapes).
With an active :class:`FaultInjector`, each point consults a seeded schedule
and injects the corresponding failure *mode*, not a mock of it:

* ``"oserror"``  — raise a genuine :class:`OSError` (what a full disk, a
  revoked mount or a flaky NFS read produces),
* ``"corrupt"`` / ``"truncate"`` — silently mangle the bytes about to be
  written (the store must *detect* this later, not crash on it),
* ``"error"``    — raise :class:`InjectedFault` (a typed
  :class:`~repro.errors.ReproError`): an unexpected exception inside a
  compute path,
* ``"crash"``    — ``os._exit(13)``: a worker process dying mid-task,
* ``"sleep"``    — delay by ``sleep_s``: a slow or hung computation.

Determinism: every rule draws from its own ``random.Random`` seeded by
``(plan.seed, rule position)``, and fires against a per-rule call counter —
the same plan over the same call sequence injects the same faults, which is
what lets the chaos property test replay a failing schedule by seed.

Plans are plain frozen dataclasses of primitives, hence picklable: the
process-pool initializer ships the active plan into worker processes
(:mod:`repro.engine.parallel`), so ``"crash"`` rules kill *real* workers.

Usage::

    from repro.reliability import FaultPlan, FaultRule, injected

    plan = FaultPlan(seed=7, rules=(
        FaultRule(point="store.put.write", kind="oserror", times=1),
        FaultRule(point="parallel.worker", kind="crash", probability=0.2),
    ))
    with injected(plan):
        ...   # every named injection point now follows the schedule
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ReproError

#: Every named injection point threaded through the package, for reference
#: (rules may also name points added later; unknown points simply never fire).
INJECTION_POINTS = (
    "store.get.read",        # DiskStore.get, before the file read
    "store.put.write",       # DiskStore.put, around the tmp-write + replace
    "compile.circuit",       # compile_dnf, before compilation
    "engine.solve_component",  # sharding.solve_component, per island
    "parallel.worker",       # worker-process task entry (crash kills a real worker)
    "serve.compute",         # AttributionService executor, before session work
)

#: The failure modes a rule may inject.
FAULT_KINDS = ("oserror", "corrupt", "truncate", "error", "crash", "sleep")


class InjectedFault(ReproError):
    """The typed surface of a deliberately injected ``"error"`` fault.

    Subclasses :class:`~repro.errors.ReproError` so the no-silent-corruption
    contract stays one ``except`` clause: a fault that no resilience layer
    absorbed must reach the caller as a typed error, never as a wrong value.
    """


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule: *where*, *what*, *when*.

    ``point`` matches an injection-point name exactly, or as a prefix when it
    ends in ``"*"`` (``"store.*"`` covers both store points).  ``probability``
    is drawn from the rule's own seeded RNG per matching call; ``times`` caps
    how often the rule fires in one process (``None`` = unlimited); ``after``
    skips the first ``after`` matching calls — "fail the third write" is
    ``after=2, times=1, probability=1.0``, fully deterministic.
    """

    point: str
    kind: str
    probability: float = 1.0
    times: "int | None" = None
    after: int = 0
    sleep_s: float = 0.001
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.sleep_s < 0:
            raise ValueError(f"sleep_s must be >= 0, got {self.sleep_s}")

    def matches(self, point: str) -> bool:
        if self.point.endswith("*"):
            return point.startswith(self.point[:-1])
        return point == self.point


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule: a seed plus an ordered rule list."""

    seed: int = 0
    rules: "tuple[FaultRule, ...]" = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))


class FaultInjector:
    """The live counterpart of a :class:`FaultPlan`: counters, RNGs, firing.

    Thread-safe (the serving tier calls injection points from executor
    threads); one injector is installed per process via :func:`activate` /
    :func:`injected`, and worker processes receive the *plan* (fresh counters)
    through the pool initializer.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._seen = [0] * len(plan.rules)      # matching calls per rule
        self._fired = [0] * len(plan.rules)     # injections per rule
        # Integer-only derived seeds: tuple seeding falls back to hash(),
        # which is salted for strings — ints keep the schedule reproducible
        # across processes and PYTHONHASHSEED values.
        self._rngs = [random.Random(plan.seed * 1_000_003 + i)
                      for i in range(len(plan.rules))]

    def _select(self, point: str, kinds: "tuple[str, ...]") -> "FaultRule | None":
        """The first rule that fires at ``point`` among the given kinds."""
        with self._lock:
            for i, rule in enumerate(self.plan.rules):
                if rule.kind not in kinds or not rule.matches(point):
                    continue
                self._seen[i] += 1
                if self._seen[i] <= rule.after:
                    continue
                if rule.times is not None and self._fired[i] >= rule.times:
                    continue
                if rule.probability < 1.0 and \
                        self._rngs[i].random() >= rule.probability:
                    continue
                self._fired[i] += 1
                return rule
        return None

    def fired(self) -> int:
        """Total injections so far (all rules), for harness introspection."""
        with self._lock:
            return sum(self._fired)

    # -- the two hook flavours -------------------------------------------------
    def check(self, point: str) -> None:
        """Raise / crash / sleep if a raising-kind rule fires at ``point``."""
        rule = self._select(point, ("oserror", "error", "crash", "sleep"))
        if rule is None:
            return
        if rule.kind == "sleep":
            time.sleep(rule.sleep_s)
            return
        if rule.kind == "crash":
            os._exit(13)
        if rule.kind == "oserror":
            raise OSError(f"{rule.message} (injected at {point})")
        raise InjectedFault(f"{rule.message} (injected at {point})")

    def mangle(self, point: str, blob: bytes) -> bytes:
        """The bytes a byte-kind rule at ``point`` silently corrupts (or not)."""
        rule = self._select(point, ("corrupt", "truncate"))
        if rule is None:
            return blob
        if rule.kind == "truncate":
            return blob[: max(0, len(blob) // 2)]
        if len(blob) == 0:
            return b"\x00"
        # Flip a byte mid-blob: past any pickle header, inside the payload.
        position = len(blob) // 2
        return blob[:position] + bytes([blob[position] ^ 0xFF]) + blob[position + 1:]


#: The process-wide active injector (``None`` = harness disabled, the hot path).
_INJECTOR: "FaultInjector | None" = None


def activate(injector: "FaultInjector | FaultPlan") -> FaultInjector:
    """Install an injector (or a plan, wrapped) process-wide; returns it."""
    global _INJECTOR
    if isinstance(injector, FaultPlan):
        injector = FaultInjector(injector)
    _INJECTOR = injector
    return injector


def deactivate() -> None:
    """Remove the active injector (idempotent)."""
    global _INJECTOR
    _INJECTOR = None


def active() -> "FaultInjector | None":
    """The process-wide injector, or ``None`` when the harness is disabled."""
    return _INJECTOR


def active_plan() -> "FaultPlan | None":
    """The active injector's plan (what pool initializers ship to workers)."""
    return None if _INJECTOR is None else _INJECTOR.plan


@contextmanager
def injected(plan: "FaultPlan | FaultInjector"):
    """Context manager: activate a fault plan, always deactivate on exit."""
    injector = activate(plan)
    try:
        yield injector
    finally:
        deactivate()


def check(point: str) -> None:
    """The raising injection hook — a no-op unless an injector is active."""
    injector = _INJECTOR
    if injector is not None:
        injector.check(point)


def mangle(point: str, blob: bytes) -> bytes:
    """The byte-mangling injection hook — identity unless an injector is active."""
    injector = _INJECTOR
    if injector is not None:
        return injector.mangle(point, blob)
    return blob


__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "INJECTION_POINTS",
    "InjectedFault",
    "activate",
    "active",
    "active_plan",
    "check",
    "deactivate",
    "injected",
    "mangle",
]
