"""Fault injection and resilience primitives (PR 9).

The paper's promise is *exactness*: every attribution is a bitwise-exact
``Fraction`` (Claim A.1), so a fault anywhere in the stack must resolve to
either a correct exact answer or a typed error — never a silently wrong
number.  This package holds both halves of that guarantee:

* :mod:`repro.reliability.faults` — the deterministic, seeded fault-injection
  harness (:class:`FaultPlan` / :class:`FaultInjector`) whose named injection
  points are threaded through the disk store, the process pools, the circuit
  compiler and the serving executor,
* :mod:`repro.reliability.retry` — bounded deterministic retry-with-backoff
  (:class:`RetryPolicy`), used by ``DiskStore.put`` and the per-island pool
  driver,
* :mod:`repro.reliability.breaker` — the per-tenant/lane
  :class:`CircuitBreaker` (closed → open → half-open) behind the serving
  tier's degradation ladder.

The degradation ladder, formalised (each rung keeps an exactness guarantee or
says so in the report's ``degradation_reason`` audit trail):

====================  ====================================================
rung                  what degrades, what survives
====================  ====================================================
circuit → counting    a per-island node-budget overrun falls back to
                      lineage conditioning: still bitwise-exact, slower
pool → in-process     a crashed worker's island is resubmitted once, then
                      solved serially in the parent: still bitwise-exact
breaker → sampled     a tripped tenant/lane breaker reroutes Shapley
                      requests to the Monte-Carlo lane: (ε, δ) estimates,
                      flagged ``exact=False``
breaker → 503         non-degradable requests get a structured
                      ``CircuitOpenError`` with ``retry_after_s`` (and a
                      real ``Retry-After`` header over HTTP)
====================  ====================================================
"""

from .breaker import STATES, BreakerRegistry, CircuitBreaker
from .faults import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    injected,
)
from .retry import NO_RETRY, RetryPolicy, call_with_retry

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "INJECTION_POINTS",
    "InjectedFault",
    "NO_RETRY",
    "RetryPolicy",
    "STATES",
    "call_with_retry",
    "injected",
]
