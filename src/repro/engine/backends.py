"""Pure per-fact value functions of the engine backends.

These are the computational kernels of :class:`repro.engine.SVCEngine`,
factored out as module-level functions of the *shared artefact* (lineage, safe
plan + full FGMC vector, or coalition table) and one fact.  Both the serial
engine and the process-pool workers of :mod:`repro.engine.parallel` call the
same functions, so the parallel backend is bitwise-identical to the serial one
by construction: there is exactly one implementation of each backend's
arithmetic.

Every kernel ends at the same seam: a per-fact *conditioned vector pair*
(strata of coalitions satisfying with/without the fact) handed to one
:class:`repro.values.ValueIndex` — Shapley by default, Banzhaf or
responsibility when the engine is configured with a different index.  The
artefacts themselves are index-independent; only this final combination step
varies.

Everything here is side-effect free and operates on picklable inputs only —
a requirement for shipping the artefact to worker processes once per pool.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

from ..data.atoms import Fact
from ..data.database import PartitionedDatabase
from ..probability.interpolation import fgmc_vector_via_pqe
from ..probability.lifted import Plan, evaluate_plan
from ..values import SHAPLEY, ValueIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile import CompiledLineage
    from ..counting.lineage import Lineage
    from ..queries.base import BooleanQuery


def combine_fgmc_vectors(with_fact_exogenous: "list[int]", without_fact: "list[int]",
                         n_endogenous: int) -> Fraction:
    """Claim A.1: combine the two per-fact FGMC vectors into a Shapley value.

    ``with_fact_exogenous[j]`` counts generalized supports of size ``j`` in
    ``(Dn \\ {μ}, Dx ∪ {μ})``; ``without_fact[j]`` in ``(Dn \\ {μ}, Dx)``;
    ``n_endogenous`` is ``|Dn|`` (including μ).

    The canonical implementation now lives in
    :class:`repro.values.ShapleyIndex` (the weighting became a pluggable
    :class:`~repro.values.ValueIndex`); this historical entry point delegates
    verbatim — one integer numerator over the shared ``n!`` denominator, one
    ``Fraction`` at the end, bitwise-identical to the per-term accumulation.
    """
    return SHAPLEY.combine(with_fact_exogenous, without_fact, n_endogenous)


# ---------------------------------------------------------------------------
# counting backend
# ---------------------------------------------------------------------------

def counting_value_from_lineage(lineage: "Lineage", fact: Fact,
                                index: ValueIndex = SHAPLEY) -> Fraction:
    """The index value of one fact by conditioning the shared lineage DNF."""
    with_vec, without_vec = lineage.conditioned_vectors(fact)
    return index.combine(with_vec, without_vec, lineage.n_variables)


def counting_value_brute(query: "BooleanQuery", pdb: PartitionedDatabase,
                         fact: Fact, index: ValueIndex = SHAPLEY) -> Fraction:
    """The index value of one fact from brute-force FGMC vectors of the two
    derived databases (the counting backend when no lineage applies)."""
    from ..counting.problems import fgmc_vector

    with_pdb = PartitionedDatabase(pdb.endogenous - {fact}, pdb.exogenous | {fact})
    without_pdb = PartitionedDatabase(pdb.endogenous - {fact}, pdb.exogenous)
    with_vec = fgmc_vector(query, with_pdb, method="brute")
    without_vec = fgmc_vector(query, without_pdb, method="brute")
    return index.combine(with_vec, without_vec, len(pdb.endogenous))


# ---------------------------------------------------------------------------
# circuit backend
# ---------------------------------------------------------------------------

def circuit_values_from_compiled(compiled: "CompiledLineage",
                                 facts: "Sequence[Fact]",
                                 index: ValueIndex = SHAPLEY
                                 ) -> "dict[Fact, Fraction]":
    """Index values of ``facts`` from the shared compiled circuit.

    One top-down derivative sweep prices every requested per-fact conditioned
    vector pair at once (:meth:`repro.compile.CompiledLineage.conditioned_vector_pairs`);
    the combination step is then identical to the other backends.  Serial
    engine and pool workers both run exactly this function — a worker
    computing one stripe of facts still pays the context sweep only once, and
    restricts the per-fact accumulation (the ``· n`` factor) to its stripe.
    """
    n = compiled.n_variables
    pairs = compiled.conditioned_vector_pairs(list(facts))
    return {fact: index.combine(with_vec, without_vec, n)
            for fact, (with_vec, without_vec) in pairs.items()}


# ---------------------------------------------------------------------------
# safe backend
# ---------------------------------------------------------------------------

def safe_value_from_plan(query: "BooleanQuery", plan: Plan, pdb: PartitionedDatabase,
                         full_vector: "list[int]", fact: Fact,
                         index: ValueIndex = SHAPLEY) -> Fraction:
    """The index value of one fact from the shared safe plan.

    ``full_vector`` is the FGMC vector of the full database, interpolated once
    per engine; only the "fact removed" vector is interpolated here, the "fact
    exogenous" vector follows from the partition identity
    ``full[k] = with[k-1] + without[k]``.
    """
    n = len(pdb.endogenous)
    without_pdb = PartitionedDatabase(pdb.endogenous - {fact}, pdb.exogenous)
    without_vec = fgmc_vector_via_pqe(
        query, without_pdb, pqe_solver=lambda _q, tid: evaluate_plan(plan, tid))
    # Partition identity: a size-(j+1) generalized support of (Dn, Dx)
    # either contains μ (a size-j support of (Dn \ {μ}, Dx ∪ {μ})) or not
    # (a size-(j+1) support of (Dn \ {μ}, Dx)).
    with_vec = [full_vector[j + 1] - (without_vec[j + 1] if j + 1 < len(without_vec) else 0)
                for j in range(n)]
    return index.combine(with_vec, without_vec, n)


# ---------------------------------------------------------------------------
# brute backend
# ---------------------------------------------------------------------------

def coalition_values_of_size(query: "BooleanQuery", pdb: PartitionedDatabase,
                             size: int) -> "dict[frozenset[Fact], int]":
    """One stratum of the coalition table: every size-``size`` coalition's value.

    The 2^n table fill is sharded across worker processes by coalition size;
    each worker evaluates the query game on its strata only.
    """
    from ..core.games import QueryGame

    game = QueryGame(query, pdb)
    players = sorted(pdb.endogenous)
    return {frozenset(coalition): game.value(frozenset(coalition))
            for coalition in itertools.combinations(players, size)}


def brute_pair_partials_for_sizes(query: "BooleanQuery", pdb: PartitionedDatabase,
                                  sizes: "list[int]"
                                  ) -> "dict[Fact, tuple[list[int], list[int]]]":
    """Per-fact conditioned-vector-pair partials over whole coalition-size strata.

    Rewrites the brute-force enumeration as a sum over *all* coalitions ``T``:
    a coalition of size ``s`` with game value ``v(T)`` contributes ``v(T)`` to
    stratum ``s - 1`` of the *with* vector of every fact in ``T`` (there
    ``T = S ∪ {μ}``) and ``v(T)`` to stratum ``s`` of the *without* vector of
    every fact outside it (there ``T = S``).  Each worker evaluates the query
    game only on its strata and returns integer pair partials, so nothing the
    size of the ``2^n`` table ever crosses a process boundary and the payload
    stays **index-agnostic** — the parent sums the strata componentwise and
    applies the configured :class:`~repro.values.ValueIndex` exactly once.
    """
    from ..core.games import QueryGame

    game = QueryGame(query, pdb)
    players = sorted(pdb.endogenous)
    n = len(players)
    partials = {f: ([0] * n, [0] * n) for f in players}
    for size in sizes:
        for coalition in itertools.combinations(players, size):
            value = game.value(frozenset(coalition))
            if value == 0:
                continue
            inside = set(coalition)
            for f in coalition:
                partials[f][0][size - 1] += value
            if size < n:
                for f in players:
                    if f not in inside:
                        partials[f][1][size] += value
    return partials


def brute_pairs_from_table(table: "dict[frozenset[Fact], int]",
                           pdb: PartitionedDatabase,
                           fact: Fact) -> "tuple[list[int], list[int]]":
    """One fact's conditioned vector pair read off the shared coalition table."""
    others = sorted(pdb.endogenous - {fact})
    n = len(pdb.endogenous)
    plus = [0] * n
    minus = [0] * n
    for size in range(len(others) + 1):
        for coalition in itertools.combinations(others, size):
            before = frozenset(coalition)
            plus[size] += table[before | {fact}]
            minus[size] += table[before]
    return plus, minus


def brute_value_from_table(table: "dict[frozenset[Fact], int]",
                           pdb: PartitionedDatabase, fact: Fact,
                           index: ValueIndex = SHAPLEY) -> Fraction:
    """The index value of one fact read off the shared coalition table."""
    plus, minus = brute_pairs_from_table(table, pdb, fact)
    return index.combine(plus, minus, len(pdb.endogenous))


__all__ = [
    "brute_pair_partials_for_sizes",
    "brute_pairs_from_table",
    "brute_value_from_table",
    "circuit_values_from_compiled",
    "coalition_values_of_size",
    "combine_fgmc_vectors",
    "counting_value_brute",
    "counting_value_from_lineage",
    "safe_value_from_plan",
]
