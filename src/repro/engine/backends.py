"""Pure per-fact value functions of the three engine backends.

These are the computational kernels of :class:`repro.engine.SVCEngine`,
factored out as module-level functions of the *shared artefact* (lineage, safe
plan + full FGMC vector, or coalition table) and one fact.  Both the serial
engine and the process-pool workers of :mod:`repro.engine.parallel` call the
same functions, so the parallel backend is bitwise-identical to the serial one
by construction: there is exactly one implementation of each backend's
arithmetic.

Everything here is side-effect free and operates on picklable inputs only —
a requirement for shipping the artefact to worker processes once per pool.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

from ..data.atoms import Fact
from ..data.database import PartitionedDatabase
from ..linalg import shapley_subset_weight
from ..probability.interpolation import fgmc_vector_via_pqe
from ..probability.lifted import Plan, evaluate_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile import CompiledLineage
    from ..counting.lineage import Lineage
    from ..queries.base import BooleanQuery


@lru_cache(maxsize=4096)
def _factorials(n: int) -> tuple[int, ...]:
    """``(0!, 1!, ..., n!)`` — the numerator table of Claim A.1's weights."""
    out = [1] * (n + 1)
    for i in range(1, n + 1):
        out[i] = out[i - 1] * i
    return tuple(out)


def combine_fgmc_vectors(with_fact_exogenous: "list[int]", without_fact: "list[int]",
                         n_endogenous: int) -> Fraction:
    """Claim A.1: combine the two per-fact FGMC vectors into a Shapley value.

    ``with_fact_exogenous[j]`` counts generalized supports of size ``j`` in
    ``(Dn \\ {μ}, Dx ∪ {μ})``; ``without_fact[j]`` in ``(Dn \\ {μ}, Dx)``;
    ``n_endogenous`` is ``|Dn|`` (including μ).

    The weights ``j! (n - j - 1)! / n!`` share the denominator ``n!``, so the
    sum accumulates as one integer over it and builds a single ``Fraction``
    at the end — one gcd normalisation per fact instead of one per non-zero
    size stratum.  ``Fraction`` reduces to lowest terms either way, so the
    result is bitwise-identical to the per-term accumulation.
    """
    if n_endogenous == 0:
        return Fraction(0)
    factorials = _factorials(n_endogenous)
    numerator = 0
    for j in range(n_endogenous):
        plus = with_fact_exogenous[j] if j < len(with_fact_exogenous) else 0
        minus = without_fact[j] if j < len(without_fact) else 0
        if plus != minus:
            numerator += factorials[j] * factorials[n_endogenous - 1 - j] * (plus - minus)
    return Fraction(numerator, factorials[n_endogenous])


# ---------------------------------------------------------------------------
# counting backend
# ---------------------------------------------------------------------------

def counting_value_from_lineage(lineage: "Lineage", fact: Fact) -> Fraction:
    """The Shapley value of one fact by conditioning the shared lineage DNF."""
    with_vec, without_vec = lineage.conditioned_vectors(fact)
    return combine_fgmc_vectors(with_vec, without_vec, lineage.n_variables)


def counting_value_brute(query: "BooleanQuery", pdb: PartitionedDatabase,
                         fact: Fact) -> Fraction:
    """The Shapley value of one fact from brute-force FGMC vectors of the two
    derived databases (the counting backend when no lineage applies)."""
    from ..counting.problems import fgmc_vector

    with_pdb = PartitionedDatabase(pdb.endogenous - {fact}, pdb.exogenous | {fact})
    without_pdb = PartitionedDatabase(pdb.endogenous - {fact}, pdb.exogenous)
    with_vec = fgmc_vector(query, with_pdb, method="brute")
    without_vec = fgmc_vector(query, without_pdb, method="brute")
    return combine_fgmc_vectors(with_vec, without_vec, len(pdb.endogenous))


# ---------------------------------------------------------------------------
# circuit backend
# ---------------------------------------------------------------------------

def circuit_values_from_compiled(compiled: "CompiledLineage",
                                 facts: "Sequence[Fact]") -> "dict[Fact, Fraction]":
    """Shapley values of ``facts`` from the shared compiled circuit.

    One top-down derivative sweep prices every requested per-fact conditioned
    vector pair at once (:meth:`repro.compile.CompiledLineage.conditioned_vector_pairs`);
    the Claim A.1 combination step is then identical to the other backends.
    Serial engine and pool workers both run exactly this function — a worker
    computing one stripe of facts still pays the context sweep only once, and
    restricts the per-fact accumulation (the ``· n`` factor) to its stripe.
    """
    n = compiled.n_variables
    pairs = compiled.conditioned_vector_pairs(list(facts))
    return {fact: combine_fgmc_vectors(with_vec, without_vec, n)
            for fact, (with_vec, without_vec) in pairs.items()}


# ---------------------------------------------------------------------------
# safe backend
# ---------------------------------------------------------------------------

def safe_value_from_plan(query: "BooleanQuery", plan: Plan, pdb: PartitionedDatabase,
                         full_vector: "list[int]", fact: Fact) -> Fraction:
    """The Shapley value of one fact from the shared safe plan.

    ``full_vector`` is the FGMC vector of the full database, interpolated once
    per engine; only the "fact removed" vector is interpolated here, the "fact
    exogenous" vector follows from the partition identity
    ``full[k] = with[k-1] + without[k]``.
    """
    n = len(pdb.endogenous)
    without_pdb = PartitionedDatabase(pdb.endogenous - {fact}, pdb.exogenous)
    without_vec = fgmc_vector_via_pqe(
        query, without_pdb, pqe_solver=lambda _q, tid: evaluate_plan(plan, tid))
    # Partition identity: a size-(j+1) generalized support of (Dn, Dx)
    # either contains μ (a size-j support of (Dn \ {μ}, Dx ∪ {μ})) or not
    # (a size-(j+1) support of (Dn \ {μ}, Dx)).
    with_vec = [full_vector[j + 1] - (without_vec[j + 1] if j + 1 < len(without_vec) else 0)
                for j in range(n)]
    return combine_fgmc_vectors(with_vec, without_vec, n)


# ---------------------------------------------------------------------------
# brute backend
# ---------------------------------------------------------------------------

def coalition_values_of_size(query: "BooleanQuery", pdb: PartitionedDatabase,
                             size: int) -> "dict[frozenset[Fact], int]":
    """One stratum of the coalition table: every size-``size`` coalition's value.

    The 2^n table fill is sharded across worker processes by coalition size;
    each worker evaluates the query game on its strata only.
    """
    from ..core.games import QueryGame

    game = QueryGame(query, pdb)
    players = sorted(pdb.endogenous)
    return {frozenset(coalition): game.value(frozenset(coalition))
            for coalition in itertools.combinations(players, size)}


def brute_partials_for_sizes(query: "BooleanQuery", pdb: PartitionedDatabase,
                             sizes: "list[int]") -> "dict[Fact, Fraction]":
    """Per-fact partial Shapley sums over whole coalition-size strata.

    Rewrites the brute-force Shapley sum as a sum over *all* coalitions ``T``:
    a coalition of size ``s`` contributes ``+w(s-1) · v(T)`` to every fact in
    ``T`` and ``-w(s) · v(T)`` to every fact outside it.  Each worker evaluates
    the query game only on its strata and returns one (exact) ``Fraction`` per
    fact, so nothing the size of the ``2^n`` table ever crosses a process
    boundary, and the read-off work shards along with the fill.  Summing the
    strata partials over all sizes ``0..n`` recovers every Shapley value
    exactly (``Fraction`` arithmetic is associative and lossless).
    """
    from ..core.games import QueryGame

    game = QueryGame(query, pdb)
    players = sorted(pdb.endogenous)
    n = len(players)
    partials = {f: Fraction(0) for f in players}
    for size in sizes:
        weight_inside = shapley_subset_weight(size - 1, n) if size > 0 else None
        weight_outside = shapley_subset_weight(size, n) if size < n else None
        for coalition in itertools.combinations(players, size):
            value = game.value(frozenset(coalition))
            if value == 0:
                continue
            if weight_inside is not None:
                for f in coalition:
                    partials[f] += weight_inside * value
            if weight_outside is not None:
                inside = set(coalition)
                for f in players:
                    if f not in inside:
                        partials[f] -= weight_outside * value
    return partials


def brute_value_from_table(table: "dict[frozenset[Fact], int]",
                           pdb: PartitionedDatabase, fact: Fact) -> Fraction:
    """The Shapley value of one fact read off the shared coalition table."""
    others = sorted(pdb.endogenous - {fact})
    n = len(pdb.endogenous)
    total = Fraction(0)
    for size in range(len(others) + 1):
        weight = shapley_subset_weight(size, n)
        for coalition in itertools.combinations(others, size):
            before = frozenset(coalition)
            total += weight * (table[before | {fact}] - table[before])
    return total


__all__ = [
    "brute_partials_for_sizes",
    "brute_value_from_table",
    "circuit_values_from_compiled",
    "coalition_values_of_size",
    "combine_fgmc_vectors",
    "counting_value_brute",
    "counting_value_from_lineage",
    "safe_value_from_plan",
]
