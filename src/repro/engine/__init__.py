"""Batched value computation (the SVC engine subsystem).

One shared lineage / safe plan / coalition table per ``(query, database)``
pair, all per-fact values — Shapley, Banzhaf or responsibility, per the
configured :class:`repro.values.ValueIndex` — derived from it by
conditioning.  See :mod:`repro.engine.svc_engine` for the design notes.
"""

from .sharding import (
    ComponentResult,
    LineageDecomposition,
    SubLineage,
    combine_component_pairs,
    decompose_dnf,
    decompose_lineage,
    solve_component,
)
from .svc_engine import (
    DEFAULT_PARALLEL_THRESHOLD,
    SHARD_POLICIES,
    EngineBackend,
    ShardPolicy,
    SVCEngine,
    clear_engine_cache,
    combine_fgmc_vectors,
    engine_cache_stats,
    get_engine,
    resolve_auto_backend,
)

__all__ = [
    "DEFAULT_PARALLEL_THRESHOLD",
    "SHARD_POLICIES",
    "ComponentResult",
    "EngineBackend",
    "LineageDecomposition",
    "SVCEngine",
    "ShardPolicy",
    "SubLineage",
    "clear_engine_cache",
    "combine_component_pairs",
    "combine_fgmc_vectors",
    "decompose_dnf",
    "decompose_lineage",
    "engine_cache_stats",
    "get_engine",
    "resolve_auto_backend",
    "solve_component",
]
