"""Batched Shapley value computation (the SVC engine subsystem).

One shared lineage / safe plan / coalition table per ``(query, database)``
pair, all per-fact Shapley values derived from it by conditioning.  See
:mod:`repro.engine.svc_engine` for the design notes.
"""

from .svc_engine import (
    DEFAULT_PARALLEL_THRESHOLD,
    EngineBackend,
    SVCEngine,
    clear_engine_cache,
    combine_fgmc_vectors,
    engine_cache_stats,
    get_engine,
    resolve_auto_backend,
)

__all__ = [
    "DEFAULT_PARALLEL_THRESHOLD",
    "EngineBackend",
    "SVCEngine",
    "clear_engine_cache",
    "combine_fgmc_vectors",
    "engine_cache_stats",
    "get_engine",
    "resolve_auto_backend",
]
