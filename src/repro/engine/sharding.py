"""Component decomposition of lineage DNFs: the engine's second sharding axis.

The lineage of a hom-closed query over a realistic database splits into
*variable-disjoint islands* (Section 4.1): groups of clauses sharing no
endogenous fact.  The recursive counter and the circuit compiler already
exploit that structure serially — both split on
:func:`repro.counting.dnf_counter._split_components` and recombine through
the complement product — but the PR 3 process pool ignored it, striping
per-fact work over the *whole* formula and shipping the whole artefact to
every worker.  This module makes the island the unit of sharding:

* :func:`decompose_lineage` splits a lineage DNF into :class:`SubLineage`
  components (each a self-contained :class:`~repro.counting.dnf_counter.MonotoneDNF`
  over its own variables) plus the free variables no clause mentions,
* :func:`solve_component` is the per-component kernel — compile the
  sub-lineage to a circuit and sweep it, or condition it with the counter —
  returning every per-fact conditioned model-count pair *local to the
  component*.  A component's circuit is orders of magnitude smaller than the
  whole formula's (Shannon expansion is super-linear), so component-wise
  compute is **less total work**, not just spread work,
* :func:`combine_component_pairs` recombines the local pairs into the global
  conditioned FGMC vector pairs of Claim A.1 with the same convolution
  identity the counter's complement trick uses: non-models of a disjunction
  of disjoint components are the convolution product of per-component
  non-models (free variables contribute a binomial row).  Prefix/suffix
  products make the recombination ``O(m)`` convolutions for ``m`` components
  instead of ``O(m^2)``.

All arithmetic is exact integer arithmetic computing the same quantities as
:meth:`MonotoneDNF.conditioned_count_by_size`, so the values fed to the
unchanged Claim A.1 combiner are bitwise-identical ``Fraction`` inputs — the
parity contract every sharded backend of this package keeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from ..compile.compiler import (
    DEFAULT_NODE_BUDGET,
    CircuitBudgetError,
    CompiledDNF,
    compile_dnf,
)
from ..counting.dnf_counter import (
    MonotoneDNF,
    _split_components,
    binomial_row,
    convolve,
    pad,
)
from ..reliability import faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..counting.lineage import Lineage
    from ..data.atoms import Fact


@dataclass(frozen=True)
class SubLineage:
    """One variable-disjoint island of a lineage DNF.

    ``variables`` lists the island's *global* variable indices in increasing
    order; ``dnf`` is the island's clauses re-indexed to the local range
    ``0 .. len(variables) - 1``.  A sub-lineage is a few tuples of small
    integers — the cheap, always-picklable unit shipped to pool workers
    (unlike the whole-artefact payloads of the fact-striping axis).
    """

    variables: tuple[int, ...]
    dnf: MonotoneDNF

    @property
    def n_variables(self) -> int:
        """Number of endogenous facts in this island."""
        return len(self.variables)

    def to_lineage(self, facts: "Sequence[Fact]") -> "Lineage":
        """The island as a real :class:`~repro.counting.lineage.Lineage`.

        ``facts`` is the parent lineage's variable tuple.  The result is what
        per-component circuits are store-keyed by: its content hash covers
        exactly the island's facts and clauses, so a database delta that
        touches one island leaves every other island's key — and its cached
        circuit — intact.
        """
        from ..counting.lineage import Lineage

        return Lineage(tuple(facts[v] for v in self.variables), self.dnf)


@dataclass(frozen=True)
class LineageDecomposition:
    """A lineage DNF split into variable-disjoint components.

    ``components`` are ordered by their smallest global variable (a
    deterministic order — :func:`_split_components` iterates sets);
    ``free_variables`` are the endogenous facts no clause mentions (null
    players by Claim 5.1).  A trivially *true* DNF decomposes into zero
    components with ``trivially_true`` set (every subset satisfies it); a
    trivially *false* DNF into zero components with the flag clear.
    """

    n_variables: int
    components: tuple[SubLineage, ...]
    free_variables: tuple[int, ...]
    trivially_true: bool = False

    @property
    def n_components(self) -> int:
        """Number of variable-disjoint islands."""
        return len(self.components)

    @property
    def largest_component(self) -> int:
        """Variable count of the largest island (``0`` for trivial lineages)."""
        return max((c.n_variables for c in self.components), default=0)


def decompose_dnf(dnf: MonotoneDNF) -> LineageDecomposition:
    """Split a monotone DNF into variable-disjoint :class:`SubLineage` islands.

    Uses the same component machinery as the recursive counter and the
    circuit compiler, so the islands here are exactly the factors their
    complement products range over.
    """
    n = dnf.n_variables
    if dnf.is_trivially_true():
        return LineageDecomposition(n, (), tuple(range(n)), trivially_true=True)
    components: list[SubLineage] = []
    covered: set[int] = set()
    for clause_group in _split_components(dnf.clauses):
        variables = tuple(sorted(frozenset().union(*clause_group)))
        covered.update(variables)
        local = {v: i for i, v in enumerate(variables)}
        local_clauses = [frozenset(local[v] for v in clause)
                         for clause in clause_group]
        components.append(SubLineage(variables,
                                     MonotoneDNF(len(variables), local_clauses)))
    components.sort(key=lambda c: c.variables)
    free = tuple(v for v in range(n) if v not in covered)
    return LineageDecomposition(n, tuple(components), free)


def decompose_lineage(lineage: "Lineage") -> LineageDecomposition:
    """The decomposition of a lineage's DNF (the engine's cheap pre-pass)."""
    return decompose_dnf(lineage.dnf)


@dataclass(frozen=True)
class ComponentResult:
    """Everything the driver needs back from one solved island.

    ``models`` is the island DNF's model-count vector (length ``n_i + 1``);
    ``pairs`` maps each *local* variable to its conditioned model-count pair
    — ``(true_models, false_models)``, each of length ``n_i`` — exactly
    :meth:`MonotoneDNF.conditioned_count_by_size` of the island DNF.
    ``compiled`` carries the island's circuit back to the parent only when it
    asked for it (for store puts); pool workers drop it otherwise so the
    result transfer stays a few short integer vectors per island.
    """

    index: int
    models: tuple[int, ...]
    pairs: "dict[int, tuple[list[int], list[int]]]" = field(compare=False)
    mode: str = "counting"
    circuit_nodes: "int | None" = None
    compile_time_s: "float | None" = None
    compiled: "CompiledDNF | None" = field(default=None, compare=False)
    fallback: "str | None" = None


def result_from_compiled(index: int, compiled: CompiledDNF,
                         compile_time_s: "float | None" = None,
                         keep_circuit: bool = False) -> ComponentResult:
    """An island's result read off an (already compiled) circuit.

    One top-down derivative sweep prices every local conditioned pair at once;
    this is also the path a store hit takes — sweep the cached circuit, never
    recompile it.
    """
    return ComponentResult(
        index=index,
        models=tuple(compiled.count_by_size()),
        pairs=compiled.conditioned_pairs(),
        mode="circuit",
        circuit_nodes=compiled.size,
        compile_time_s=compile_time_s,
        compiled=compiled if keep_circuit else None)


def _result_by_counting(sub: SubLineage, index: int) -> ComponentResult:
    dnf = sub.dnf
    return ComponentResult(
        index=index,
        models=tuple(dnf.count_by_size()),
        pairs={v: dnf.conditioned_count_by_size(v)
               for v in range(sub.n_variables)},
        mode="counting")


def solve_component(sub: SubLineage, index: int, mode: str = "counting",
                    node_budget: int = DEFAULT_NODE_BUDGET,
                    keep_circuit: bool = False) -> ComponentResult:
    """Solve one island: compile-and-sweep (``"circuit"``) or condition (``"counting"``).

    The node budget applies *per component* in circuit mode; an island that
    blows it is counted instead (recorded in ``fallback``) while the other
    islands keep their circuits — the graceful degradation the whole-formula
    compiler can only apply all-or-nothing.
    """
    faults.check("engine.solve_component")
    if mode == "circuit":
        start = time.perf_counter()
        try:
            compiled = compile_dnf(sub.dnf, node_budget=node_budget)
        except CircuitBudgetError as error:
            return replace(_result_by_counting(sub, index), fallback=str(error))
        return result_from_compiled(index, compiled,
                                    compile_time_s=time.perf_counter() - start,
                                    keep_circuit=keep_circuit)
    if mode != "counting":
        raise ValueError(f"unknown component mode {mode!r}")
    return _result_by_counting(sub, index)


def combine_component_pairs(decomposition: LineageDecomposition,
                            results: "Sequence[ComponentResult]",
                            ) -> "dict[int, tuple[list[int], list[int]]]":
    """Recombine per-island pairs into the global conditioned FGMC pairs.

    Returns ``{global_variable: (with_vector, without_vector)}`` with both
    vectors of length ``n`` (sizes ``0 .. n-1`` over the other ``n-1``
    variables) — integer for integer what
    :meth:`MonotoneDNF.conditioned_count_by_size` returns on the whole
    formula, ready for the unchanged Claim A.1 combiner.

    The identity is the counter's complement trick run in reverse: a subset
    falsifies the disjunction of disjoint islands iff it falsifies every
    island, so global non-models are the convolution product of per-island
    non-models (free variables contribute a binomial row).  Conditioning a
    variable of island ``i`` replaces only factor ``i``; prefix/suffix
    products of the island non-model vectors give each island its
    "product of the others" in ``O(m)`` convolutions total.
    """
    n = decomposition.n_variables
    pairs: "dict[int, tuple[list[int], list[int]]]" = {}
    if n == 0:
        return pairs
    total = binomial_row(n - 1)
    if decomposition.trivially_true:
        # Every subset satisfies the formula under either restriction.
        for v in range(n):
            pairs[v] = (list(total), list(total))
        return pairs

    ordered = sorted(results, key=lambda r: r.index)
    if len(ordered) != decomposition.n_components or any(
            r.index != i for i, r in enumerate(ordered)):
        raise ValueError("results do not cover the decomposition's components")

    # Per-island non-model vectors: N_i[k] = C(n_i, k) - M_i[k].
    nonmodels: list[list[int]] = []
    for sub, res in zip(decomposition.components, ordered):
        row = binomial_row(sub.n_variables)
        nonmodels.append([row[k] - res.models[k]
                          for k in range(sub.n_variables + 1)])
    m = len(nonmodels)
    prefix: list[list[int]] = [[1]]
    for vector in nonmodels:
        prefix.append(convolve(prefix[-1], vector))
    suffix: list[list[int]] = [[1]] * (m + 1)
    for i in range(m - 1, -1, -1):
        suffix[i] = convolve(nonmodels[i], suffix[i + 1])
    free_count = len(decomposition.free_variables)
    free_row = binomial_row(free_count)

    for i, (sub, res) in enumerate(zip(decomposition.components, ordered)):
        rest = convolve(convolve(prefix[i], suffix[i + 1]), free_row)
        ni = sub.n_variables
        local_total = binomial_row(ni - 1)
        for local_v, (true_models, false_models) in res.pairs.items():
            out: list[list[int]] = []
            for branch in (true_models, false_models):
                branch_nonmodels = [local_total[k] - branch[k] for k in range(ni)]
                nm = pad(convolve(branch_nonmodels, rest), n)
                out.append([total[k] - nm[k] for k in range(n)])
            pairs[sub.variables[local_v]] = (out[0], out[1])

    if decomposition.free_variables:
        # Conditioning a free variable leaves the formula unchanged; both
        # restrictions count its models over the remaining n - 1 variables.
        nm_free = pad(convolve(prefix[m], binomial_row(free_count - 1)), n)
        shared = [total[k] - nm_free[k] for k in range(n)]
        for v in decomposition.free_variables:
            pairs[v] = (list(shared), list(shared))
    return pairs


__all__ = [
    "ComponentResult",
    "LineageDecomposition",
    "SubLineage",
    "combine_component_pairs",
    "decompose_dnf",
    "decompose_lineage",
    "result_from_compiled",
    "solve_component",
]
