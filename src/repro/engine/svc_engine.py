"""The batched SVC engine: all Shapley values from one shared lineage.

The paper's headline reduction (Proposition 3.3 / Claim A.1) expresses the
Shapley value of a fact ``μ`` as an affine combination of two FGMC vectors —
on ``(Dn \\ {μ}, Dx ∪ {μ})`` and on ``(Dn \\ {μ}, Dx)``.  Computed fact by
fact this rebuilds the lineage DNF (an expensive homomorphism enumeration)
``2n`` times for ``n`` endogenous facts.  The engine instead derives every
per-fact vector pair from **one** shared artefact per ``(query, database)``:

* ``circuit``  — compile the lineage once into a smoothed, decomposable
  decision circuit (:mod:`repro.compile`) and read **all** per-fact vector
  pairs off it in one top-down derivative sweep — ``O(|circuit| · n)`` total
  instead of ``n`` independent conditionings; compilation is bounded by a
  node budget, beyond which the engine falls back to ``counting``,
* ``counting`` — build the lineage once and obtain each pair by *conditioning*
  the DNF (``x_μ := true`` / ``x_μ := false``); the memoised component
  decomposition of the counter is shared across all ``n`` conditionings,
* ``safe``     — compile one safe plan, interpolate the full-database FGMC
  vector once, and per fact interpolate only the "fact removed" vector; the
  "fact exogenous" vector follows from the partition identity
  ``full[k] = with[k-1] + without[k]``, halving the lifted-PQE work and
  sharing the plan across all evaluations,
* ``brute``    — tabulate the ``2^n`` coalition values once and read every
  Shapley value off the table (one query evaluation per coalition instead of
  one per coalition *per fact*).

``method="auto"`` resolves safe → circuit → brute from the query's structure
alone (:func:`resolve_auto_backend`); the circuit choice degrades to
``counting`` at artefact-build time when compilation blows the node budget.
A module-level LRU keyed by ``(query, pdb, resolved method, counting_method,
workers, parallel_threshold, circuit_node_budget, store, shard, index)`` lets
independent call sites (ranking, max-SVC, relevance analysis, CLI) reuse the
same engine and its artefacts; ``auto`` is resolved to its concrete backend
*before* keying, so an ``auto`` call and an explicit call share one engine.

Every backend ends at the same seam — a per-fact conditioned vector pair —
combined by a pluggable :class:`repro.values.ValueIndex` (``index=``:
Shapley by default, Banzhaf or responsibility on request).  The artefacts
are index-independent: engines for different indices hold distinct LRU
entries but share plans, lineages and circuits through an attached
:class:`~repro.workspace.ArtifactStore`.

Because every per-fact value is an independent conditioning of the shared
artefact, the whole-database workload shards across worker processes: with
``workers > 1`` the engine stripes the per-fact work (counting / safe) or the
coalition-table strata (brute) over a :class:`~concurrent.futures.ProcessPoolExecutor`
(see :mod:`repro.engine.parallel`), degrading gracefully to the serial path
when the instance is small, the artefact fails to pickle, or the pool cannot
be created.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from fractions import Fraction
from functools import lru_cache
from typing import TYPE_CHECKING, Literal

from ..compile import (
    DEFAULT_NODE_BUDGET,
    CircuitBudgetError,
    CompiledLineage,
    compile_lineage,
)
from ..counting.lineage import Lineage, build_lineage
from ..counting.problems import CountingMethod
from ..data.atoms import Fact
from ..data.database import PartitionedDatabase
from ..probability.interpolation import fgmc_vector_via_pqe
from ..probability.lifted import Plan, UnsafeQueryError, evaluate_plan, safe_plan
from ..queries.base import BooleanQuery
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from ..values import ValueIndex, get_index
from . import backends, parallel, sharding
from .backends import combine_fgmc_vectors  # noqa: F401  (historic export)

if TYPE_CHECKING:  # pragma: no cover - typing only
    # repro.workspace sits *above* the engine (its workspace module builds on
    # repro.api, which builds on this module), so the runtime imports of the
    # store helpers happen lazily inside the artefact methods.
    from ..workspace.store import ArtifactStore

#: Default smallest ``|Dn|`` for which a multi-worker engine actually spawns a
#: pool: below it, per-process startup dominates any conceivable speedup
#: (a 2^11 coalition table fills in well under pool-startup time, and the
#: counting backend's per-fact conditionings are sub-millisecond at that size).
DEFAULT_PARALLEL_THRESHOLD = 12

#: Backend names; ``auto`` resolves to the first applicable of
#: safe/circuit/brute (circuit degrading to counting on budget overrun).
EngineBackend = Literal["auto", "brute", "circuit", "counting", "safe"]

#: Sharding policies for the exact backends.  ``"fact"`` stripes per-fact
#: work over the whole shared artefact (the PR 3 axis); ``"component"``
#: decomposes the lineage into variable-disjoint islands and solves each
#: island independently (less total work, and the unit that parallelises);
#: ``"auto"`` picks the component axis whenever a cheap decomposition
#: pre-pass finds at least two islands.  Backends without a lineage (safe,
#: brute) always use the fact axis.
ShardPolicy = Literal["auto", "component", "fact"]
SHARD_POLICIES = ("auto", "component", "fact")


def resolve_auto_backend(query: BooleanQuery) -> "tuple[str, Plan | None]":
    """Resolve ``method="auto"`` to its concrete backend from the query alone.

    The ladder of the per-fact :func:`repro.core.svc.shapley_value_of_fact`,
    extended by knowledge compilation: a safe plan when the conservative
    compiler finds one, else the circuit backend for (C-)hom-closed queries
    (it degrades to ``counting`` per instance if compilation blows the node
    budget — an instance-level decision that cannot be made here), else brute
    force.  Returns the compiled safe plan alongside the name so callers that
    resolved eagerly (the engine LRU) can seed the engine without compiling
    the plan twice.
    """
    if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        try:
            return "safe", safe_plan(query)
        except UnsafeQueryError:
            pass
    if query.is_hom_closed:
        return "circuit", None
    return "brute", None


#: Memoised resolution for the engine LRU: ``get_engine`` resolves ``auto``
#: on every call, and the safe-plan attempt must not be paid per call.
#: Unhashable queries raise ``TypeError`` here — callers fall back to an
#: uncached engine, exactly like an unhashable LRU key.
_resolved_auto = lru_cache(maxsize=1024)(resolve_auto_backend)


def _ranking_key(item: "tuple[Fact, Fraction]") -> "tuple[Fraction, Fact]":
    """The shared sort key of every Shapley ranking in the package.

    Facts are ordered by decreasing Shapley value; equal values are broken by
    the library's total order on facts (NOT by string rendering).  This is the
    single deterministic tie-breaking contract promised by
    :func:`repro.core.svc.rank_facts_by_shapley_value`,
    :meth:`SVCEngine.ranking` and :meth:`repro.api.AttributionSession.ranking`.
    """
    fact, value = item
    return (-value, fact)


class SVCEngine:
    """Batched Shapley value computation for one ``(query, database)`` pair.

    The engine resolves its backend lazily (so constructing one is free) and
    caches every shared artefact — lineage, safe plan, full FGMC vector,
    coalition-value table — as well as each per-fact value.  ``value_of``
    computes a single fact's value from the shared artefacts; ``all_values``
    is therefore ``O(lineage + n · conditioning)`` instead of the per-fact
    loop's ``O(n · lineage)``.

    With ``workers > 1`` and ``|Dn| >= parallel_threshold``, :meth:`all_values`
    shards the per-fact derivative accumulation (circuit), the per-fact
    conditioning loop (counting), the per-fact plan interpolations (safe), or
    the coalition-table fill (brute) across a process pool; the merged results land in the same ``_values`` memo, so
    ``value_of`` / ``ranking`` / ``max_value`` are oblivious to how the values
    were computed.  :attr:`workers_used` records what actually ran.
    """

    def __init__(self, query: BooleanQuery, pdb: PartitionedDatabase,
                 method: EngineBackend = "auto",
                 counting_method: CountingMethod = "auto",
                 workers: int = 1,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 circuit_node_budget: int = DEFAULT_NODE_BUDGET,
                 store: "ArtifactStore | None" = None,
                 shard: ShardPolicy = "auto",
                 index: "str | ValueIndex" = "shapley"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if parallel_threshold < 0:
            raise ValueError(
                f"parallel_threshold must be >= 0, got {parallel_threshold}")
        if circuit_node_budget < 1:
            raise ValueError(
                f"circuit_node_budget must be >= 1, got {circuit_node_budget}")
        if shard not in SHARD_POLICIES:
            raise ValueError(
                f"shard must be one of {SHARD_POLICIES}, got {shard!r}")
        self.query = query
        self.pdb = pdb
        self.method = method
        self.counting_method = counting_method
        self.workers = workers
        self.parallel_threshold = parallel_threshold
        self.circuit_node_budget = circuit_node_budget
        self.store = store
        self.shard = shard
        self._index: ValueIndex = get_index(index)  # raises on unknown names
        self.index = self._index.name
        self._backend: "str | None" = None
        self._plan: "Plan | None" = None
        self._lineage: "Lineage | None" = None
        self._compiled: "CompiledLineage | None" = None
        self._circuit_fallback: "str | None" = None
        self._pool_fallback: "str | None" = None
        self._full_vector: "list[int] | None" = None
        self._value_table: "dict[frozenset[Fact], int] | None" = None
        self._values: dict[Fact, Fraction] = {}
        self._counting_resolved: "str | None" = None
        self._workers_used: int = 1
        self._decomposition_memo: "sharding.LineageDecomposition | None" = None
        self._component_results_memo: "tuple[sharding.ComponentResult, ...] | None" = None

    # -- backend resolution -----------------------------------------------------
    def backend(self) -> str:
        """The resolved backend name (``safe``, ``circuit``, ``counting`` or ``brute``)."""
        if self._backend is None:
            self._backend = self._resolve_backend()
        return self._backend

    def _resolve_backend(self) -> str:
        if self.method in ("brute", "counting"):
            return self.method
        if self.method == "safe":
            self._ensure_plan()
            return "safe"
        if self.method == "circuit":
            return self._resolve_circuit()
        # auto: the query-level ladder, then the instance-level budget check
        # for the circuit choice.
        name, plan = resolve_auto_backend(self.query)
        if plan is not None and self._plan is None:
            self._plan = plan
        if name == "circuit":
            return self._resolve_circuit()
        return name

    def _resolve_circuit(self) -> str:
        """``circuit`` when the lineage compiles under the node budget, else ``counting``.

        On the component shard axis no whole-formula circuit is built at all:
        each island compiles under its own budget inside the component path
        (with a *per-island* counting fallback), so resolution only has to
        run the cheap decomposition pre-pass.
        """
        if not self.query.is_hom_closed:
            raise ValueError(
                "the circuit backend requires a (C-)hom-closed query; "
                f"{type(self.query).__name__} is not")
        if self._component_axis_for("circuit"):
            return "circuit"
        try:
            self._ensure_compiled()
        except CircuitBudgetError as error:
            self._circuit_fallback = str(error)
            return "counting"
        return "circuit"

    # -- shared artefacts -------------------------------------------------------
    def _ensure_plan(self) -> Plan:
        if self._plan is None:
            if not isinstance(self.query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
                raise UnsafeQueryError("the safe pipeline applies to CQs and UCQs only")
            if self.store is None:
                self._plan = safe_plan(self.query)
            else:
                from ..workspace.store import plan_key

                cached = self.store.get(plan_key(self.query))
                if isinstance(cached, Plan):
                    self._plan = cached
                else:
                    self._plan = safe_plan(self.query)
                    self.store.put(plan_key(self.query), self._plan)
        return self._plan

    def lineage(self) -> Lineage:
        """The shared lineage of the query over the database (built once).

        With an :class:`~repro.workspace.ArtifactStore` attached, the lineage
        is looked up by content hash of ``(query, database)`` first — a hit
        skips the homomorphism enumeration entirely — and stored on a miss so
        later engines (and later processes, for a disk-backed store) reuse it.
        """
        if self._lineage is None:
            if self.store is None:
                self._lineage = build_lineage(self.query, self.pdb)
            else:
                from ..workspace.store import lineage_key

                key = lineage_key(self.query, self.pdb)
                cached = self.store.get(key)
                if isinstance(cached, Lineage):
                    self._lineage = cached
                else:
                    self._lineage = build_lineage(self.query, self.pdb)
                    self.store.put(key, self._lineage)
        return self._lineage

    def _ensure_compiled(self) -> CompiledLineage:
        """The lineage compiled to a circuit (once; raises on budget overrun).

        Circuits are store-keyed by content hash of ``(query, lineage)``: any
        database snapshot producing the same lineage — in particular one that
        differs only outside the query's support — reuses one compiled
        circuit.  A stored circuit larger than this engine's node budget is
        ignored (the recompile then raises :class:`CircuitBudgetError` exactly
        as a fresh compilation would).
        """
        if self._compiled is None:
            key = None
            if self.store is not None:
                from ..workspace.store import circuit_key

                key = circuit_key(self.query, self.lineage())
            cached = None if key is None else self.store.get(key)
            if (isinstance(cached, CompiledLineage)
                    and cached.size <= self.circuit_node_budget):
                self._compiled = cached
            else:
                self._compiled = compile_lineage(
                    self.lineage(), node_budget=self.circuit_node_budget)
                if key is not None:
                    self.store.put(key, self._compiled)
        return self._compiled

    def _fgmc_via_plan(self, pdb: PartitionedDatabase) -> list[int]:
        plan = self._ensure_plan()
        return fgmc_vector_via_pqe(self.query, pdb,
                                   pqe_solver=lambda _q, tid: evaluate_plan(plan, tid))

    def _full_fgmc(self) -> list[int]:
        if self._full_vector is None:
            self._full_vector = self._fgmc_via_plan(self.pdb)
        return self._full_vector

    def _coalition_table(self) -> dict[frozenset[Fact], int]:
        if self._value_table is None:
            table: dict[frozenset[Fact], int] = {}
            for size in range(len(self.pdb.endogenous) + 1):
                table.update(backends.coalition_values_of_size(self.query, self.pdb, size))
            self._value_table = table
        return self._value_table

    # -- per-backend value computations ------------------------------------------
    def _resolved_counting_method(self) -> str:
        if self._counting_resolved is None:
            if self.counting_method == "auto":
                self._counting_resolved = "lineage" if self.query.is_hom_closed else "brute"
            elif self.counting_method == "lineage" and not self.query.is_hom_closed:
                raise ValueError("lineage counting requires a hom-closed query")
            else:
                self._counting_resolved = self.counting_method
        return self._counting_resolved

    def _value_counting(self, fact: Fact) -> Fraction:
        if self._resolved_counting_method() == "lineage":
            return backends.counting_value_from_lineage(self.lineage(), fact,
                                                        self._index)
        return backends.counting_value_brute(self.query, self.pdb, fact,
                                             self._index)

    def _value_safe(self, fact: Fact) -> Fraction:
        return backends.safe_value_from_plan(self.query, self._ensure_plan(),
                                             self.pdb, self._full_fgmc(), fact,
                                             self._index)

    def _value_circuit(self, fact: Fact) -> Fraction:
        """Every pending value from one derivative sweep (then read one off).

        The top-down sweep prices all per-fact conditioned vector pairs at
        once, so the first request fills the memo for every pending fact —
        asking for a single value costs the same sweep as asking for all.
        """
        pending = [f for f in sorted(self.pdb.endogenous) if f not in self._values]
        self._values.update(backends.circuit_values_from_compiled(
            self._ensure_compiled(), pending, self._index))
        return self._values[fact]

    def _value_brute(self, fact: Fact) -> Fraction:
        return backends.brute_value_from_table(self._coalition_table(),
                                               self.pdb, fact, self._index)

    # -- component shard axis -----------------------------------------------------
    def _decomposition(self) -> "sharding.LineageDecomposition":
        """The lineage's island decomposition (the cheap sharding pre-pass)."""
        if self._decomposition_memo is None:
            self._decomposition_memo = sharding.decompose_lineage(self.lineage())
        return self._decomposition_memo

    def _component_axis_for(self, backend: str) -> bool:
        """Whether the component shard axis applies to the given backend.

        Only the lineage-based exact backends decompose (safe plans and the
        coalition table have no island structure to exploit); an explicit
        ``shard="component"`` request on the other backends degrades
        gracefully to the fact axis, mirroring how the circuit backend
        degrades to counting on a blown budget.  ``shard="auto"`` takes the
        component axis only when the pre-pass finds at least two islands —
        one island means component-wise compute *is* whole-formula compute.
        """
        if self.shard == "fact" or backend not in ("circuit", "counting"):
            return False
        if backend == "counting" and (
                not self.query.is_hom_closed
                or self._resolved_counting_method() != "lineage"):
            return False
        if self.shard == "component":
            return True
        return self._decomposition().n_components >= 2

    def _component_results(self) -> "tuple[sharding.ComponentResult, ...]":
        """Every island solved — store hits swept, misses solved (pool or serial).

        With an artifact store attached and the circuit mode active, each
        island's circuit is keyed by the content hash of ``(query,
        sub-lineage)``: a database delta inside the lineage support
        recompiles only the island it touches, every other island is a store
        hit swept without recompilation.
        """
        if self._component_results_memo is not None:
            return self._component_results_memo
        decomposition = self._decomposition()
        mode = "circuit" if self.backend() == "circuit" else "counting"
        count = decomposition.n_components
        results: "list[sharding.ComponentResult | None]" = [None] * count
        keys = [None] * count
        if self.store is not None and mode == "circuit":
            from ..workspace.store import circuit_key

            facts = self.lineage().variables
            for i, sub in enumerate(decomposition.components):
                keys[i] = circuit_key(self.query, sub.to_lineage(facts))
                cached = self.store.get(keys[i])
                if (isinstance(cached, CompiledLineage)
                        and cached.size <= self.circuit_node_budget):
                    results[i] = sharding.result_from_compiled(
                        i, cached.compiled, cached.compile_time_s)
        pending = [i for i in range(count) if results[i] is None]
        keep = self.store is not None and mode == "circuit"
        if (len(pending) >= 2 and self.workers > 1
                and len(self.pdb.endogenous) >= self.parallel_threshold):
            outcome = parallel.parallel_component_results(
                [(i, decomposition.components[i]) for i in pending],
                mode, self.circuit_node_budget, self.workers,
                keep_circuits=keep)
            if outcome is not None:
                for result in outcome.results:
                    results[result.index] = result
                self._workers_used = min(self.workers, len(pending))
                if outcome.retried or outcome.degraded:
                    self._pool_fallback = (
                        f"pool→in-process: {outcome.retried} island task(s) "
                        f"resubmitted after worker failure, {outcome.degraded} "
                        f"of {len(pending)} island(s) solved in the parent")
                pending = []
            else:
                self._pool_fallback = (
                    "pool→serial: the process pool was unavailable; every "
                    "island solved in-process")
        for i in pending:
            results[i] = sharding.solve_component(
                decomposition.components[i], i, mode,
                self.circuit_node_budget, keep_circuit=keep)
        fallbacks = [r for r in results if r.fallback is not None]
        if fallbacks and self._circuit_fallback is None:
            self._circuit_fallback = (
                f"{len(fallbacks)} of {count} components fell back to "
                f"counting: {fallbacks[0].fallback}")
        if keep:
            # Only freshly compiled islands carry a circuit (store hits and
            # counting fallbacks do not) — persist exactly those.
            facts = self.lineage().variables
            for i, result in enumerate(results):
                if result.compiled is not None and keys[i] is not None:
                    sub_lineage = decomposition.components[i].to_lineage(facts)
                    self.store.put(keys[i], CompiledLineage(
                        sub_lineage, result.compiled,
                        result.compile_time_s or 0.0))
        self._component_results_memo = tuple(results)
        return self._component_results_memo

    def _value_sharded(self, fact: Fact) -> Fraction:
        """Every pending value from the solved islands (then read one off).

        Like the circuit sweep, the island recombination prices all per-fact
        conditioned pairs at once, so the first request fills the memo for
        every pending fact.
        """
        pending = [f for f in sorted(self.pdb.endogenous)
                   if f not in self._values]
        pairs = sharding.combine_component_pairs(self._decomposition(),
                                                 self._component_results())
        lineage = self.lineage()
        n = lineage.n_variables
        self._values.update(
            {f: self._index.combine(*pairs[lineage.index_of(f)], n)
             for f in pending})
        return self._values[fact]

    # -- parallel execution -------------------------------------------------------
    @property
    def workers_used(self) -> int:
        """How many workers the last batched computation actually used.

        ``1`` until a pool has successfully run: the serial path, small
        instances below ``parallel_threshold``, and every pickle / pool
        fallback all report ``1``.  When a pool did run, this is the number
        of workers that received work — ``min(workers, stripes)``, which may
        be below the configured count on instances with few pending facts.
        """
        return self._workers_used

    def _parallel_artefact(self) -> "tuple[str, object] | None":
        """The ``(kind, payload)`` pair shipped to the pool initializer.

        Resolves the backend (and forces the shared artefact to exist) exactly
        as the serial path would, so any resolution error raises here, in the
        parent, rather than inside a worker.
        """
        backend = self.backend()
        if backend == "circuit":
            return ("circuit", self._ensure_compiled())
        if backend == "counting":
            if self._resolved_counting_method() == "lineage":
                return ("counting-lineage", self.lineage())
            return ("counting-brute", (self.query, self.pdb))
        if backend == "safe":
            return ("safe", (self.query, self._ensure_plan(), self.pdb,
                             self._full_fgmc()))
        return ("brute", (self.query, self.pdb))

    def _compute_parallel(self, facts: "list[Fact]") -> bool:
        """Try to compute the pending facts on a process pool.

        Returns ``True`` when the pool produced results (now merged into the
        ``_values`` memo or the coalition table); ``False`` signals the caller
        to run the serial path instead.
        """
        artefact = self._parallel_artefact()
        n = len(self.pdb.endogenous)
        if artefact[0] == "brute":
            if self._value_table is not None:
                # A serial value_of already paid for the full table; reading
                # the remaining facts off it beats re-evaluating 2^n coalitions.
                return False
            values = parallel.parallel_brute_values(artefact, n, self.workers,
                                                    self._index)
            used = min(self.workers, n + 1)  # one stripe per coalition size
        else:
            if len(facts) < self.parallel_threshold:
                # Most values are already memoised: the leftover per-fact work
                # is too small to amortise a pool (the brute case differs —
                # its 2^n fill is all-or-nothing, so |Dn| is the right gate).
                return False
            values = parallel.parallel_fact_values(artefact, facts, self.workers,
                                                   self.index)
            used = min(self.workers, len(facts))
        if values is None:
            self._pool_fallback = (
                "pool→serial: the process pool was unavailable or failed; "
                "per-fact work computed serially")
            return False
        self._values.update(values)
        self._workers_used = used
        return True

    # -- public API ---------------------------------------------------------------
    def value_of(self, fact: Fact) -> Fraction:
        """The configured index's value of one endogenous fact, from the shared artefacts."""
        if fact not in self.pdb.endogenous:
            raise ValueError(f"{fact} is not an endogenous fact of the database")
        if fact not in self._values:
            backend = self.backend()
            if self._component_axis_for(backend):
                value = self._value_sharded(fact)
            elif backend == "safe":
                value = self._value_safe(fact)
            elif backend == "circuit":
                value = self._value_circuit(fact)
            elif backend == "counting":
                value = self._value_counting(fact)
            else:
                value = self._value_brute(fact)
            self._values[fact] = value
            if (self._value_table is not None
                    and len(self._values) == len(self.pdb.endogenous)):
                # Every value is memoised; the 2^n coalition table would
                # otherwise stay pinned by the engine LRU for the process
                # lifetime.
                self._value_table = None
        return self._values[fact]

    def all_values(self) -> dict[Fact, Fraction]:
        """The Shapley value of every endogenous fact (the batched workload).

        With ``workers > 1`` and at least ``parallel_threshold`` endogenous
        facts, the pending per-fact work is sharded across a process pool
        first (falling back to the serial loop when the artefact will not
        pickle or no pool can be created); results are merged into the same
        memo ``value_of`` reads from.
        """
        facts = sorted(self.pdb.endogenous)
        pending = [f for f in facts if f not in self._values]
        if (pending and self.workers > 1
                and len(self.pdb.endogenous) >= self.parallel_threshold
                and not self._component_axis_for(self.backend())):
            # The component axis parallelises inside _component_results
            # (one task per island), not by fact striping.
            self._compute_parallel(pending)
        return {fact: self.value_of(fact) for fact in facts}

    def lineage_size(self) -> "int | None":
        """Number of clauses of the lineage DNF, or ``None`` if no lineage was built.

        Reads the memoised artefact only — it never triggers a lineage build,
        so it is safe to call for report metadata on any backend.
        """
        if self._lineage is None:
            return None
        return len(self._lineage.dnf.clauses)

    def circuit_size(self) -> "int | None":
        """Node count of the compiled circuit, or ``None`` if none was compiled.

        Like :meth:`lineage_size` this reads the memoised artefact only, so it
        is safe report metadata on every backend.  On the component shard
        axis this is the **sum** of the island circuits' node counts — the
        total compiled footprint, directly comparable to (and typically far
        below) a whole-formula compilation.
        """
        if self._compiled is not None:
            return self._compiled.size
        if self._component_results_memo is not None:
            nodes = [r.circuit_nodes for r in self._component_results_memo
                     if r.circuit_nodes is not None]
            return sum(nodes) if nodes else None
        return None

    def circuit_compile_time_s(self) -> "float | None":
        """Wall time of the lineage compilation, or ``None`` if none ran.

        On the component shard axis: the summed compile time of the islands
        compiled *by this engine* (store hits contribute the recorded time of
        their original compilation).
        """
        if self._compiled is not None:
            return self._compiled.compile_time_s
        if self._component_results_memo is not None:
            times = [r.compile_time_s for r in self._component_results_memo
                     if r.compile_time_s is not None]
            return sum(times) if times else None
        return None

    def circuit_fallback_reason(self) -> "str | None":
        """Why the circuit backend degraded to counting (``None`` when it did not).

        On the component shard axis the backend never degrades wholesale;
        this records instead when individual islands blew the node budget
        and were counted (the others keep their circuits).
        """
        return self._circuit_fallback

    def degradation_reasons(self) -> "tuple[str, ...]":
        """The engine's rungs of the degradation ladder, in the order taken.

        Entries are human-readable audit lines: ``"circuit→counting: ..."``
        when the compiler's node budget forced lineage conditioning (still
        exact), and ``"pool→..."`` when worker failures pushed islands back
        onto the parent or the pool was unavailable outright (still exact,
        serial).  Empty on a clean run; surfaced as
        :attr:`repro.api.AttributionReport.degradation_reason`.
        """
        reasons = []
        if self._circuit_fallback is not None:
            reasons.append(f"circuit→counting: {self._circuit_fallback}")
        if self._pool_fallback is not None:
            reasons.append(self._pool_fallback)
        return tuple(reasons)

    def shard_axis(self) -> str:
        """The resolved sharding axis: ``"component"`` or ``"fact"``.

        The resolution of the ``shard`` policy against the backend and (for
        ``"auto"``) the island pre-pass — what a report's ``shard_axis``
        field records.
        """
        return "component" if self._component_axis_for(self.backend()) else "fact"

    def n_components(self) -> "int | None":
        """Island count of the lineage decomposition, or ``None`` if no pre-pass ran.

        Reads the memoised decomposition only (safe metadata on any backend).
        """
        if self._decomposition_memo is None:
            return None
        return self._decomposition_memo.n_components

    def largest_component_size(self) -> "int | None":
        """Variable count of the largest island, or ``None`` if no pre-pass ran."""
        if self._decomposition_memo is None:
            return None
        return self._decomposition_memo.largest_component

    def ranking(self) -> list[tuple[Fact, Fraction]]:
        """Facts sorted by decreasing Shapley value (ties broken by fact order)."""
        return sorted(self.all_values().items(), key=_ranking_key)

    def max_value(self) -> tuple[Fact, Fraction]:
        """A fact of maximum Shapley value and that value (``max-SVC``)."""
        if not self.pdb.endogenous:
            raise ValueError("the database has no endogenous fact")
        return self.ranking()[0]

    def grand_coalition_value(self) -> int:
        """``v(Dn)``: 1 iff the full database satisfies the query but ``Dx`` alone does not.

        By the efficiency axiom the Shapley values returned by
        :meth:`all_values` sum to exactly this quantity.
        """
        full = 1 if self.query.evaluate(self.pdb.all_facts) else 0
        exogenous = 1 if self.query.evaluate(self.pdb.exogenous) else 0
        return full - exogenous


# ---------------------------------------------------------------------------
# Per-(query, pdb) engine cache
# ---------------------------------------------------------------------------

_ENGINE_CACHE: "OrderedDict[tuple, SVCEngine]" = OrderedDict()
_ENGINE_CACHE_SIZE = 128
_CACHE_HITS = 0
_CACHE_MISSES = 0
#: Guards the LRU's pop/insert/evict sequences and the counters: the serving
#: tier calls :func:`get_engine` from several executor threads at once, and an
#: unguarded ``OrderedDict`` corrupts under concurrent structural mutation.
#: Engine *construction* happens outside the lock (it can compile), so two
#: threads missing on one key may both build — the later insert wins, which
#: only costs duplicated work, never a wrong result.
_ENGINE_CACHE_LOCK = threading.Lock()


def get_engine(query: BooleanQuery, pdb: PartitionedDatabase,
               method: EngineBackend = "auto",
               counting_method: CountingMethod = "auto",
               workers: int = 1,
               parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
               circuit_node_budget: int = DEFAULT_NODE_BUDGET,
               store: "ArtifactStore | None" = None,
               shard: ShardPolicy = "auto",
               index: str = "shapley") -> SVCEngine:
    """A (possibly cached) engine for the given query, database and backend.

    Engines are cached in an LRU keyed by ``(query, pdb, resolved method,
    counting_method, workers, parallel_threshold, circuit_node_budget,
    store, shard, index)`` so that repeated whole-database workloads — ranking, max-SVC,
    relevance analysis, CLI invocations — share one lineage / plan / circuit.
    Unhashable queries fall back to a fresh, uncached engine (counted as a
    miss in :func:`engine_cache_stats`).  ``store`` (an optional
    :class:`repro.workspace.ArtifactStore`, compared by identity) lets those
    artefacts additionally persist outside the engine — across engines,
    workspaces and, for a disk-backed store, across processes.

    ``method="auto"`` is resolved to its concrete backend name **before** the
    key is built (:func:`resolve_auto_backend`, memoised per query), so an
    ``auto`` call and an explicit call for the backend it resolves to share
    one engine — and one shared artefact — instead of holding two cache
    entries for the same ``(query, pdb)``.  The query-level ``circuit``
    resolution may still degrade to ``counting`` inside the engine when the
    instance blows the node budget; the key keeps the resolved *request*
    either way.

    Cache correctness rests on the immutability of the key: ``Database`` and
    :class:`repro.data.database.PartitionedDatabase` hold their facts in
    frozensets and refuse attribute assignment, so a cached engine can never
    be made stale by in-place mutation (see ``tests/test_api_session.py``).
    """
    global _CACHE_HITS, _CACHE_MISSES
    plan: "Plan | None" = None
    resolved = method
    if method == "auto":
        try:
            resolved, plan = _resolved_auto(query)
        except TypeError:  # unhashable query: the engine resolves privately
            with _ENGINE_CACHE_LOCK:
                _CACHE_MISSES += 1
            return SVCEngine(query, pdb, method, counting_method,
                             workers, parallel_threshold, circuit_node_budget,
                             store, shard, index)
    # The *requested* shard policy is keyed (resolving "auto" to an axis
    # needs the lineage, far too expensive at key time); an "auto" call and
    # an explicit "component" call therefore hold separate engines even when
    # auto resolves to the component axis.
    key = (query, pdb, resolved, counting_method, workers, parallel_threshold,
           circuit_node_budget, store, shard, index)
    try:
        with _ENGINE_CACHE_LOCK:
            try:
                engine = _ENGINE_CACHE.pop(key)
                _CACHE_HITS += 1
                _ENGINE_CACHE[key] = engine  # re-insert: most recently used
                return engine
            except KeyError:
                _CACHE_MISSES += 1
    except TypeError:
        with _ENGINE_CACHE_LOCK:
            _CACHE_MISSES += 1
        return SVCEngine(query, pdb, resolved, counting_method,
                         workers, parallel_threshold, circuit_node_budget,
                         store, shard, index)
    engine = SVCEngine(query, pdb, resolved, counting_method,
                       workers, parallel_threshold, circuit_node_budget,
                       store, shard, index)
    if plan is not None:
        engine._plan = plan  # auto already compiled it: don't pay twice
        if store is not None:
            # Seeding bypasses _ensure_plan, so persist the plan here —
            # otherwise auto-dispatched plans never reach the store and
            # explicit method="safe" callers in other processes recompile.
            # Guarded by a get: a workspace produces a new snapshot (an
            # engine miss) per delta, and the plan for a fixed query never
            # changes, so an unconditional put would rewrite the same
            # artifact on every refresh.
            from ..workspace.store import plan_key

            pkey = plan_key(query)
            if store.get(pkey) is None:
                store.put(pkey, plan)
    with _ENGINE_CACHE_LOCK:
        _ENGINE_CACHE[key] = engine
        while len(_ENGINE_CACHE) > _ENGINE_CACHE_SIZE:
            _ENGINE_CACHE.popitem(last=False)
    return engine


def engine_cache_stats() -> dict[str, int]:
    """Counters of the engine LRU (reported by the session metadata).

    ``hits`` / ``misses`` / ``size`` describe the engine LRU itself;
    ``auto_resolutions`` is the entry count of the memoised ``auto``-backend
    resolution (which holds compiled safe plans), so a fully cleared cache
    reports all four as zero.
    """
    with _ENGINE_CACHE_LOCK:
        return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES,
                "size": len(_ENGINE_CACHE),
                "auto_resolutions": _resolved_auto.cache_info().currsize}


def clear_engine_cache() -> None:
    """Drop all cached engines and reset the hit/miss counters.

    Also clears the memoised ``auto``-backend resolution (and with it every
    safe plan it holds): before this, "cleared" caches silently kept serving
    plans and backend choices resolved for earlier engines.
    """
    global _CACHE_HITS, _CACHE_MISSES
    with _ENGINE_CACHE_LOCK:
        _ENGINE_CACHE.clear()
        _resolved_auto.cache_clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0
