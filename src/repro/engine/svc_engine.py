"""The batched SVC engine: all Shapley values from one shared lineage.

The paper's headline reduction (Proposition 3.3 / Claim A.1) expresses the
Shapley value of a fact ``μ`` as an affine combination of two FGMC vectors —
on ``(Dn \\ {μ}, Dx ∪ {μ})`` and on ``(Dn \\ {μ}, Dx)``.  Computed fact by
fact this rebuilds the lineage DNF (an expensive homomorphism enumeration)
``2n`` times for ``n`` endogenous facts.  The engine instead derives every
per-fact vector pair from **one** shared artefact per ``(query, database)``:

* ``counting`` — build the lineage once and obtain each pair by *conditioning*
  the DNF (``x_μ := true`` / ``x_μ := false``); the memoised component
  decomposition of the counter is shared across all ``n`` conditionings,
* ``safe``     — compile one safe plan, interpolate the full-database FGMC
  vector once, and per fact interpolate only the "fact removed" vector; the
  "fact exogenous" vector follows from the partition identity
  ``full[k] = with[k-1] + without[k]``, halving the lifted-PQE work and
  sharing the plan across all evaluations,
* ``brute``    — tabulate the ``2^n`` coalition values once and read every
  Shapley value off the table (one query evaluation per coalition instead of
  one per coalition *per fact*).

``method="auto"`` resolves safe → counting → brute exactly like the per-fact
:func:`repro.core.svc.shapley_value_of_fact`.  A module-level LRU keyed by
``(query, pdb, method, counting_method)`` lets independent call sites (ranking,
max-SVC, relevance analysis, CLI) reuse the same engine and its artefacts.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from fractions import Fraction
from typing import Literal

from ..counting.lineage import Lineage, build_lineage
from ..counting.problems import CountingMethod, fgmc_vector
from ..data.atoms import Fact
from ..data.database import PartitionedDatabase
from ..linalg import shapley_subset_weight
from ..probability.interpolation import fgmc_vector_via_pqe
from ..probability.lifted import Plan, UnsafeQueryError, evaluate_plan, safe_plan
from ..queries.base import BooleanQuery
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries

#: Backend names; ``auto`` resolves to the first applicable of safe/counting/brute.
EngineBackend = Literal["auto", "brute", "counting", "safe"]


def _ranking_key(item: "tuple[Fact, Fraction]") -> "tuple[Fraction, Fact]":
    """The shared sort key of every Shapley ranking in the package.

    Facts are ordered by decreasing Shapley value; equal values are broken by
    the library's total order on facts (NOT by string rendering).  This is the
    single deterministic tie-breaking contract promised by
    :func:`repro.core.svc.rank_facts_by_shapley_value`,
    :meth:`SVCEngine.ranking` and :meth:`repro.api.AttributionSession.ranking`.
    """
    fact, value = item
    return (-value, fact)


def combine_fgmc_vectors(with_fact_exogenous: "list[int]", without_fact: "list[int]",
                         n_endogenous: int) -> Fraction:
    """Claim A.1: combine the two per-fact FGMC vectors into a Shapley value.

    ``with_fact_exogenous[j]`` counts generalized supports of size ``j`` in
    ``(Dn \\ {μ}, Dx ∪ {μ})``; ``without_fact[j]`` in ``(Dn \\ {μ}, Dx)``;
    ``n_endogenous`` is ``|Dn|`` (including μ).
    """
    total = Fraction(0)
    for j in range(n_endogenous):
        plus = with_fact_exogenous[j] if j < len(with_fact_exogenous) else 0
        minus = without_fact[j] if j < len(without_fact) else 0
        if plus != minus:
            total += shapley_subset_weight(j, n_endogenous) * (plus - minus)
    return total


class SVCEngine:
    """Batched Shapley value computation for one ``(query, database)`` pair.

    The engine resolves its backend lazily (so constructing one is free) and
    caches every shared artefact — lineage, safe plan, full FGMC vector,
    coalition-value table — as well as each per-fact value.  ``value_of``
    computes a single fact's value from the shared artefacts; ``all_values``
    is therefore ``O(lineage + n · conditioning)`` instead of the per-fact
    loop's ``O(n · lineage)``.
    """

    def __init__(self, query: BooleanQuery, pdb: PartitionedDatabase,
                 method: EngineBackend = "auto",
                 counting_method: CountingMethod = "auto"):
        self.query = query
        self.pdb = pdb
        self.method = method
        self.counting_method = counting_method
        self._backend: "str | None" = None
        self._plan: "Plan | None" = None
        self._lineage: "Lineage | None" = None
        self._full_vector: "list[int] | None" = None
        self._value_table: "dict[frozenset[Fact], int] | None" = None
        self._values: dict[Fact, Fraction] = {}
        self._counting_resolved: "str | None" = None

    # -- backend resolution -----------------------------------------------------
    def backend(self) -> str:
        """The resolved backend name (``safe``, ``counting`` or ``brute``)."""
        if self._backend is None:
            self._backend = self._resolve_backend()
        return self._backend

    def _resolve_backend(self) -> str:
        if self.method in ("brute", "counting"):
            return self.method
        if self.method == "safe":
            self._ensure_plan()
            return "safe"
        # auto: safe plan if one compiles, then lineage counting, then brute —
        # the same ladder as the per-fact shapley_value_of_fact.
        if isinstance(self.query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            try:
                self._ensure_plan()
                return "safe"
            except UnsafeQueryError:
                pass
        if self.query.is_hom_closed:
            return "counting"
        return "brute"

    # -- shared artefacts -------------------------------------------------------
    def _ensure_plan(self) -> Plan:
        if self._plan is None:
            if not isinstance(self.query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
                raise UnsafeQueryError("the safe pipeline applies to CQs and UCQs only")
            self._plan = safe_plan(self.query)
        return self._plan

    def lineage(self) -> Lineage:
        """The shared lineage of the query over the database (built once)."""
        if self._lineage is None:
            self._lineage = build_lineage(self.query, self.pdb)
        return self._lineage

    def _fgmc_via_plan(self, pdb: PartitionedDatabase) -> list[int]:
        plan = self._ensure_plan()
        return fgmc_vector_via_pqe(self.query, pdb,
                                   pqe_solver=lambda _q, tid: evaluate_plan(plan, tid))

    def _full_fgmc(self) -> list[int]:
        if self._full_vector is None:
            self._full_vector = self._fgmc_via_plan(self.pdb)
        return self._full_vector

    def _coalition_table(self) -> dict[frozenset[Fact], int]:
        if self._value_table is None:
            from ..core.games import QueryGame

            game = QueryGame(self.query, self.pdb)
            players = sorted(self.pdb.endogenous)
            table: dict[frozenset[Fact], int] = {}
            for size in range(len(players) + 1):
                for coalition in itertools.combinations(players, size):
                    chosen = frozenset(coalition)
                    table[chosen] = game.value(chosen)
            self._value_table = table
        return self._value_table

    # -- per-backend value computations ------------------------------------------
    def _resolved_counting_method(self) -> str:
        if self._counting_resolved is None:
            if self.counting_method == "auto":
                self._counting_resolved = "lineage" if self.query.is_hom_closed else "brute"
            elif self.counting_method == "lineage" and not self.query.is_hom_closed:
                raise ValueError("lineage counting requires a hom-closed query")
            else:
                self._counting_resolved = self.counting_method
        return self._counting_resolved

    def _value_counting(self, fact: Fact) -> Fraction:
        n = len(self.pdb.endogenous)
        if self._resolved_counting_method() == "lineage":
            with_vec, without_vec = self.lineage().conditioned_vectors(fact)
        else:
            with_pdb = PartitionedDatabase(self.pdb.endogenous - {fact},
                                           self.pdb.exogenous | {fact})
            without_pdb = PartitionedDatabase(self.pdb.endogenous - {fact},
                                              self.pdb.exogenous)
            with_vec = fgmc_vector(self.query, with_pdb, method="brute")
            without_vec = fgmc_vector(self.query, without_pdb, method="brute")
        return combine_fgmc_vectors(with_vec, without_vec, n)

    def _value_safe(self, fact: Fact) -> Fraction:
        n = len(self.pdb.endogenous)
        full = self._full_fgmc()
        without_pdb = PartitionedDatabase(self.pdb.endogenous - {fact}, self.pdb.exogenous)
        without_vec = self._fgmc_via_plan(without_pdb)
        # Partition identity: a size-(j+1) generalized support of (Dn, Dx)
        # either contains μ (a size-j support of (Dn \ {μ}, Dx ∪ {μ})) or not
        # (a size-(j+1) support of (Dn \ {μ}, Dx)).
        with_vec = [full[j + 1] - (without_vec[j + 1] if j + 1 < len(without_vec) else 0)
                    for j in range(n)]
        return combine_fgmc_vectors(with_vec, without_vec, n)

    def _value_brute(self, fact: Fact) -> Fraction:
        table = self._coalition_table()
        others = sorted(self.pdb.endogenous - {fact})
        n = len(self.pdb.endogenous)
        total = Fraction(0)
        for size in range(len(others) + 1):
            weight = shapley_subset_weight(size, n)
            for coalition in itertools.combinations(others, size):
                before = frozenset(coalition)
                total += weight * (table[before | {fact}] - table[before])
        return total

    # -- public API ---------------------------------------------------------------
    def value_of(self, fact: Fact) -> Fraction:
        """The Shapley value of one endogenous fact, from the shared artefacts."""
        if fact not in self.pdb.endogenous:
            raise ValueError(f"{fact} is not an endogenous fact of the database")
        if fact not in self._values:
            backend = self.backend()
            if backend == "safe":
                value = self._value_safe(fact)
            elif backend == "counting":
                value = self._value_counting(fact)
            else:
                value = self._value_brute(fact)
            self._values[fact] = value
            if (self._value_table is not None
                    and len(self._values) == len(self.pdb.endogenous)):
                # Every value is memoised; the 2^n coalition table would
                # otherwise stay pinned by the engine LRU for the process
                # lifetime.
                self._value_table = None
        return self._values[fact]

    def all_values(self) -> dict[Fact, Fraction]:
        """The Shapley value of every endogenous fact (the batched workload)."""
        return {fact: self.value_of(fact) for fact in sorted(self.pdb.endogenous)}

    def lineage_size(self) -> "int | None":
        """Number of clauses of the lineage DNF, or ``None`` if no lineage was built.

        Reads the memoised artefact only — it never triggers a lineage build,
        so it is safe to call for report metadata on any backend.
        """
        if self._lineage is None:
            return None
        return len(self._lineage.dnf.clauses)

    def ranking(self) -> list[tuple[Fact, Fraction]]:
        """Facts sorted by decreasing Shapley value (ties broken by fact order)."""
        return sorted(self.all_values().items(), key=_ranking_key)

    def max_value(self) -> tuple[Fact, Fraction]:
        """A fact of maximum Shapley value and that value (``max-SVC``)."""
        if not self.pdb.endogenous:
            raise ValueError("the database has no endogenous fact")
        return self.ranking()[0]

    def grand_coalition_value(self) -> int:
        """``v(Dn)``: 1 iff the full database satisfies the query but ``Dx`` alone does not.

        By the efficiency axiom the Shapley values returned by
        :meth:`all_values` sum to exactly this quantity.
        """
        full = 1 if self.query.evaluate(self.pdb.all_facts) else 0
        exogenous = 1 if self.query.evaluate(self.pdb.exogenous) else 0
        return full - exogenous


# ---------------------------------------------------------------------------
# Per-(query, pdb) engine cache
# ---------------------------------------------------------------------------

_ENGINE_CACHE: "OrderedDict[tuple, SVCEngine]" = OrderedDict()
_ENGINE_CACHE_SIZE = 128
_CACHE_HITS = 0
_CACHE_MISSES = 0


def get_engine(query: BooleanQuery, pdb: PartitionedDatabase,
               method: EngineBackend = "auto",
               counting_method: CountingMethod = "auto") -> SVCEngine:
    """A (possibly cached) engine for the given query, database and backend.

    Engines are cached in an LRU keyed by ``(query, pdb, method,
    counting_method)`` so that repeated whole-database workloads — ranking,
    max-SVC, relevance analysis, CLI invocations — share one lineage / plan.
    Unhashable queries fall back to a fresh, uncached engine (counted as a
    miss in :func:`engine_cache_stats`).

    Cache correctness rests on the immutability of the key: ``Database`` and
    :class:`repro.data.database.PartitionedDatabase` hold their facts in
    frozensets and refuse attribute assignment, so a cached engine can never
    be made stale by in-place mutation (see ``tests/test_api_session.py``).
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = (query, pdb, method, counting_method)
    try:
        engine = _ENGINE_CACHE.pop(key)
        _CACHE_HITS += 1
    except KeyError:
        _CACHE_MISSES += 1
        engine = SVCEngine(query, pdb, method, counting_method)
    except TypeError:
        _CACHE_MISSES += 1
        return SVCEngine(query, pdb, method, counting_method)
    _ENGINE_CACHE[key] = engine
    while len(_ENGINE_CACHE) > _ENGINE_CACHE_SIZE:
        _ENGINE_CACHE.popitem(last=False)
    return engine


def engine_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the engine LRU (reported by the session metadata)."""
    return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES, "size": len(_ENGINE_CACHE)}


def clear_engine_cache() -> None:
    """Drop all cached engines and reset the hit/miss counters."""
    global _CACHE_HITS, _CACHE_MISSES
    _ENGINE_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
