"""Process-pool sharding of the batched SVC engine.

The paper's batched reduction makes every per-fact value an independent
conditioning of one shared artefact — a lineage DNF, a compiled safe plan, or
a coalition table — which is exactly the shape that shards across workers.
This module is the execution layer behind :class:`repro.engine.SVCEngine`:

* the parent pickles the shared artefact **once per pool** and ships it
  through the pool initializer (not per task), so each worker deserialises it
  a single time and then serves many per-fact tasks against it,
* the per-fact work of the ``circuit``, ``counting`` and ``safe`` backends is
  sharded by striping the sorted fact list across workers (a circuit worker
  pays the shared context sweep once and accumulates only its stripe's
  per-fact vectors),
* the ``2^n`` coalition-table fill of the ``brute`` backend is sharded by
  coalition size (each worker evaluates whole strata of the table),
* every worker runs the *same* per-fact kernels as the serial engine
  (:mod:`repro.engine.backends`), so parallel results are bitwise-identical
  ``Fraction`` values by construction.

The configured :class:`repro.values.ValueIndex` travels by *name* in the
initializer payload of the fact-striping kinds; the brute and component kinds
stay index-agnostic — their workers return integer conditioned-vector-pair
partials, and the parent applies the index exactly once.

Both drivers degrade gracefully: if the artefact fails to pickle, or the pool
itself fails (e.g. a sandbox forbids ``fork``), they return ``None`` and the
engine falls back to the serial path.  Correctness therefore never depends on
the pool; only wall-clock time does.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from fractions import Fraction
from typing import Any, Sequence

from ..data.atoms import Fact
from ..values import SHAPLEY, ValueIndex, get_index
from . import backends, sharding

#: Worker-process state, installed once per pool by :func:`_init_worker`.
#: ``_STATE`` is ``(kind, artefact, index_name)`` where ``kind`` names the
#: backend flavour and ``index_name`` the value index the fact-striping kinds
#: combine with (``None`` for the pair-producing brute / component kinds).
_STATE: "tuple[str, Any, str | None] | None" = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: deserialise the shared artefact once per worker."""
    global _STATE
    _STATE = pickle.loads(payload)


def _fact_chunk_values(facts: Sequence[Fact]) -> "list[tuple[Fact, Fraction]]":
    """Worker task: per-fact index values for one stripe of the fact list."""
    kind, artefact, index_name = _STATE
    index = get_index(index_name)
    if kind == "circuit":
        compiled = artefact
        return list(backends.circuit_values_from_compiled(compiled, facts,
                                                          index).items())
    if kind == "counting-lineage":
        lineage = artefact
        return [(f, backends.counting_value_from_lineage(lineage, f, index))
                for f in facts]
    if kind == "counting-brute":
        query, pdb = artefact
        return [(f, backends.counting_value_brute(query, pdb, f, index))
                for f in facts]
    if kind == "safe":
        query, plan, pdb, full_vector = artefact
        return [(f, backends.safe_value_from_plan(query, plan, pdb, full_vector,
                                                  f, index))
                for f in facts]
    raise ValueError(f"unknown worker kind {kind!r}")


def _component_chunk(task: "tuple[int, sharding.SubLineage]",
                     ) -> sharding.ComponentResult:
    """Worker task: solve one variable-disjoint island of the lineage.

    Unlike the fact-striping tasks, the shared initializer state carries only
    the solving policy (mode, node budget, whether to ship circuits back);
    the sub-lineage itself travels with the task — a few tuples of small
    integers per island, instead of the whole artefact per pool.  Islands
    produce conditioned *vectors*, not values, so the task is index-agnostic.
    """
    kind, policy, _ = _STATE
    if kind != "component":
        raise ValueError(f"unknown worker kind {kind!r}")
    mode, node_budget, keep_circuit = policy
    index, sub = task
    return sharding.solve_component(sub, index, mode=mode,
                                    node_budget=node_budget,
                                    keep_circuit=keep_circuit)


def _coalition_sizes_chunk(sizes: Sequence[int]
                           ) -> "dict[Fact, tuple[list[int], list[int]]]":
    """Worker task: per-fact conditioned-pair partials for one stripe of sizes.

    Returning integer pair partials instead of the raw table strata keeps the
    result transfer at ``2n`` integers per fact per worker (the ``2^n`` table
    never crosses a process boundary), shards the per-fact read-off along
    with the fill, and keeps the payload index-agnostic — the parent sums the
    strata and applies the configured index once.
    """
    kind, artefact, _ = _STATE
    if kind != "brute":
        raise ValueError(f"unknown worker kind {kind!r}")
    query, pdb = artefact
    return backends.brute_pair_partials_for_sizes(query, pdb, list(sizes))


def _pickled(payload: object) -> "bytes | None":
    """The pickled payload, or ``None`` when it cannot be pickled."""
    try:
        return pickle.dumps(payload)
    except Exception:
        return None


def _stripes(items: Sequence, workers: int) -> "list[list]":
    """Split items into at most ``workers`` interleaved, non-empty stripes.

    Striping (rather than contiguous blocks) balances the work when cost
    varies monotonically along the sequence — e.g. coalition sizes, whose
    strata sizes are binomials peaking at ``n/2``.
    """
    stripes = [list(items[i::workers]) for i in range(workers)]
    return [stripe for stripe in stripes if stripe]


def parallel_fact_values(artefact: "tuple[str, Any]", facts: Sequence[Fact],
                         workers: int,
                         index_name: str = "shapley"
                         ) -> "dict[Fact, Fraction] | None":
    """Per-fact index values of ``facts``, sharded across a process pool.

    ``artefact`` is ``(kind, payload)`` as understood by
    :func:`_fact_chunk_values`; ``index_name`` selects the value index every
    worker combines with.  Returns ``None`` when the artefact cannot be
    pickled or the pool fails, signalling the engine to fall back to its
    serial path.
    """
    payload = _pickled((artefact[0], artefact[1], index_name))
    if payload is None:
        return None
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            results = pool.map(_fact_chunk_values, _stripes(facts, workers))
            return {f: v for chunk in results for f, v in chunk}
    except Exception:
        # Pool-level failure (fork unavailable, broken pool, unpicklable
        # result, a worker raising): the serial path recomputes and, for
        # deterministic errors, re-raises with full context.
        return None


def parallel_component_results(tasks: "Sequence[tuple[int, sharding.SubLineage]]",
                               mode: str, node_budget: int, workers: int,
                               keep_circuits: bool = False,
                               ) -> "list[sharding.ComponentResult] | None":
    """Solve lineage islands across a process pool (the component shard axis).

    ``tasks`` pairs each island with its index in the decomposition; every
    worker runs the same :func:`repro.engine.sharding.solve_component` kernel
    as the serial path, so recombined values stay bitwise-identical.
    ``keep_circuits`` asks workers to return compiled circuits alongside the
    count vectors (the parent persists them in its artifact store).  Returns
    ``None`` on pickling or pool failure — the engine's serial fallback.
    """
    payload = _pickled(("component", (mode, node_budget, keep_circuits), None))
    if payload is None:
        return None
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            return list(pool.map(_component_chunk, tasks))
    except Exception:
        return None


def parallel_brute_values(artefact: "tuple[str, Any]", n_endogenous: int,
                          workers: int,
                          index: ValueIndex = SHAPLEY
                          ) -> "dict[Fact, Fraction] | None":
    """Every index value of the brute backend, strata sharded across a pool.

    The ``2^n`` coalition evaluations are chunked by coalition size; each
    worker returns per-fact integer pair partials over its strata, which add
    up componentwise (integer addition — summation order is irrelevant) to
    the same conditioned vector pairs the serial table read-off produces; the
    parent then applies ``index`` once per fact.  Returns ``None`` on
    pickling or pool failure (serial fallback).
    """
    payload = _pickled((artefact[0], artefact[1], None))
    if payload is None:
        return None
    sizes = list(range(n_endogenous + 1))
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            results = list(pool.map(_coalition_sizes_chunk, _stripes(sizes, workers)))
    except Exception:
        return None
    pairs: "dict[Fact, tuple[list[int], list[int]]]" = {}
    for partial in results:
        for f, (plus, minus) in partial.items():
            if f not in pairs:
                pairs[f] = (list(plus), list(minus))
            else:
                total_plus, total_minus = pairs[f]
                for j, v in enumerate(plus):
                    total_plus[j] += v
                for j, v in enumerate(minus):
                    total_minus[j] += v
    return {f: index.combine(plus, minus, n_endogenous)
            for f, (plus, minus) in pairs.items()}


__all__ = ["parallel_brute_values", "parallel_component_results",
           "parallel_fact_values"]
