"""Process-pool sharding of the batched SVC engine.

The paper's batched reduction makes every per-fact value an independent
conditioning of one shared artefact — a lineage DNF, a compiled safe plan, or
a coalition table — which is exactly the shape that shards across workers.
This module is the execution layer behind :class:`repro.engine.SVCEngine`:

* the parent pickles the shared artefact **once per pool** and ships it
  through the pool initializer (not per task), so each worker deserialises it
  a single time and then serves many per-fact tasks against it,
* the per-fact work of the ``circuit``, ``counting`` and ``safe`` backends is
  sharded by striping the sorted fact list across workers (a circuit worker
  pays the shared context sweep once and accumulates only its stripe's
  per-fact vectors),
* the ``2^n`` coalition-table fill of the ``brute`` backend is sharded by
  coalition size (each worker evaluates whole strata of the table),
* every worker runs the *same* per-fact kernels as the serial engine
  (:mod:`repro.engine.backends`), so parallel results are bitwise-identical
  ``Fraction`` values by construction.

The configured :class:`repro.values.ValueIndex` travels by *name* in the
initializer payload of the fact-striping kinds; the brute and component kinds
stay index-agnostic — their workers return integer conditioned-vector-pair
partials, and the parent applies the index exactly once.

All drivers degrade gracefully: if the artefact fails to pickle, or the pool
itself fails (e.g. a sandbox forbids ``fork``), they return ``None`` and the
engine falls back to the serial path.  The component driver goes further —
a failed island task is resubmitted to a fresh pool once, and an island still
failing after the retry round is solved *in-process*, so one crashed worker
degrades one island, not the whole batch
(:class:`ComponentPoolOutcome` records what happened).  Correctness therefore
never depends on the pool; only wall-clock time does.

Fault injection: when a :mod:`repro.reliability.faults` plan is active in the
parent, the pool initializer ships it into every worker process, so
``"crash"`` rules at the ``"parallel.worker"`` point kill *real* workers —
the failure mode the retry-then-degrade path exists for.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Sequence

from ..data.atoms import Fact
from ..reliability import faults
from ..reliability.retry import RetryPolicy
from ..values import SHAPLEY, ValueIndex, get_index
from . import backends, sharding

#: Worker-process state, installed once per pool by :func:`_init_worker`.
#: ``_STATE`` is ``(kind, artefact, index_name)`` where ``kind`` names the
#: backend flavour and ``index_name`` the value index the fact-striping kinds
#: combine with (``None`` for the pair-producing brute / component kinds).
_STATE: "tuple[str, Any, str | None] | None" = None

#: The component driver's resubmission policy: one retry round, tiny backoff
#: (a crashed worker needs a fresh pool, not patience), then in-process.
POOL_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.0)


def _init_worker(payload: bytes) -> None:
    """Pool initializer: deserialise the shared artefact once per worker.

    The payload's optional fourth element is the parent's active fault plan;
    installing it here makes worker processes obey the same seeded schedule
    (fresh per-process counters — a ``times=1`` rule fires once per worker).
    """
    global _STATE
    state = pickle.loads(payload)
    if len(state) == 4:
        kind, artefact, index_name, plan = state
        if plan is not None:
            faults.activate(plan)
        _STATE = (kind, artefact, index_name)
    else:
        _STATE = state


def _fact_chunk_values(facts: Sequence[Fact]) -> "list[tuple[Fact, Fraction]]":
    """Worker task: per-fact index values for one stripe of the fact list."""
    faults.check("parallel.worker")
    kind, artefact, index_name = _STATE
    index = get_index(index_name)
    if kind == "circuit":
        compiled = artefact
        return list(backends.circuit_values_from_compiled(compiled, facts,
                                                          index).items())
    if kind == "counting-lineage":
        lineage = artefact
        return [(f, backends.counting_value_from_lineage(lineage, f, index))
                for f in facts]
    if kind == "counting-brute":
        query, pdb = artefact
        return [(f, backends.counting_value_brute(query, pdb, f, index))
                for f in facts]
    if kind == "safe":
        query, plan, pdb, full_vector = artefact
        return [(f, backends.safe_value_from_plan(query, plan, pdb, full_vector,
                                                  f, index))
                for f in facts]
    raise ValueError(f"unknown worker kind {kind!r}")


def _component_chunk(task: "tuple[int, sharding.SubLineage]",
                     ) -> sharding.ComponentResult:
    """Worker task: solve one variable-disjoint island of the lineage.

    Unlike the fact-striping tasks, the shared initializer state carries only
    the solving policy (mode, node budget, whether to ship circuits back);
    the sub-lineage itself travels with the task — a few tuples of small
    integers per island, instead of the whole artefact per pool.  Islands
    produce conditioned *vectors*, not values, so the task is index-agnostic.
    """
    faults.check("parallel.worker")
    kind, policy, _ = _STATE
    if kind != "component":
        raise ValueError(f"unknown worker kind {kind!r}")
    mode, node_budget, keep_circuit = policy
    index, sub = task
    return sharding.solve_component(sub, index, mode=mode,
                                    node_budget=node_budget,
                                    keep_circuit=keep_circuit)


def _coalition_sizes_chunk(sizes: Sequence[int]
                           ) -> "dict[Fact, tuple[list[int], list[int]]]":
    """Worker task: per-fact conditioned-pair partials for one stripe of sizes.

    Returning integer pair partials instead of the raw table strata keeps the
    result transfer at ``2n`` integers per fact per worker (the ``2^n`` table
    never crosses a process boundary), shards the per-fact read-off along
    with the fill, and keeps the payload index-agnostic — the parent sums the
    strata and applies the configured index once.
    """
    faults.check("parallel.worker")
    kind, artefact, _ = _STATE
    if kind != "brute":
        raise ValueError(f"unknown worker kind {kind!r}")
    query, pdb = artefact
    return backends.brute_pair_partials_for_sizes(query, pdb, list(sizes))


def _pickled(payload: object) -> "bytes | None":
    """The pickled payload, or ``None`` when it cannot be pickled."""
    try:
        return pickle.dumps(payload)
    except Exception:
        return None


def _initializer_payload(kind: str, artefact: Any,
                         index_name: "str | None") -> "bytes | None":
    """The pool-initializer payload, carrying the active fault plan along."""
    return _pickled((kind, artefact, index_name, faults.active_plan()))


def _stripes(items: Sequence, workers: int) -> "list[list]":
    """Split items into at most ``workers`` interleaved, non-empty stripes.

    Striping (rather than contiguous blocks) balances the work when cost
    varies monotonically along the sequence — e.g. coalition sizes, whose
    strata sizes are binomials peaking at ``n/2``.
    """
    stripes = [list(items[i::workers]) for i in range(workers)]
    return [stripe for stripe in stripes if stripe]


def parallel_fact_values(artefact: "tuple[str, Any]", facts: Sequence[Fact],
                         workers: int,
                         index_name: str = "shapley"
                         ) -> "dict[Fact, Fraction] | None":
    """Per-fact index values of ``facts``, sharded across a process pool.

    ``artefact`` is ``(kind, payload)`` as understood by
    :func:`_fact_chunk_values`; ``index_name`` selects the value index every
    worker combines with.  Returns ``None`` when the artefact cannot be
    pickled or the pool fails, signalling the engine to fall back to its
    serial path.
    """
    payload = _initializer_payload(artefact[0], artefact[1], index_name)
    if payload is None:
        return None
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            results = pool.map(_fact_chunk_values, _stripes(facts, workers))
            return {f: v for chunk in results for f, v in chunk}
    except Exception:
        # Pool-level failure (fork unavailable, broken pool, unpicklable
        # result, a worker raising): the serial path recomputes and, for
        # deterministic errors, re-raises with full context.
        return None


@dataclass(frozen=True)
class ComponentPoolOutcome:
    """What the component pool actually did: results plus the failure ledger.

    ``retried`` counts island tasks resubmitted to a fresh pool after a first
    failure; ``degraded`` counts islands the pool never delivered, solved
    in-process by the parent instead.  ``retried == degraded == 0`` is the
    happy path; anything else surfaces in the engine's degradation reasons.
    """

    results: "tuple[sharding.ComponentResult, ...]"
    retried: int = 0
    degraded: int = 0


def parallel_component_results(tasks: "Sequence[tuple[int, sharding.SubLineage]]",
                               mode: str, node_budget: int, workers: int,
                               keep_circuits: bool = False,
                               retry: "RetryPolicy | None" = None,
                               ) -> "ComponentPoolOutcome | None":
    """Solve lineage islands across a process pool (the component shard axis).

    ``tasks`` pairs each island with its index in the decomposition; every
    worker runs the same :func:`repro.engine.sharding.solve_component` kernel
    as the serial path, so recombined values stay bitwise-identical.
    ``keep_circuits`` asks workers to return compiled circuits alongside the
    count vectors (the parent persists them in its artifact store).

    Failure containment is per island, not per batch: tasks are submitted
    individually, a failed island is resubmitted to a *fresh* pool (one crash
    poisons a ``ProcessPoolExecutor`` wholesale, so retry rounds re-fork),
    and an island that still fails is solved in-process by the parent — where
    a deterministic error re-raises with full context instead of silently
    degrading.  Returns ``None`` only when the policy payload cannot be
    pickled (the engine's wholesale serial fallback).
    """
    payload = _initializer_payload("component",
                                   (mode, node_budget, keep_circuits), None)
    if payload is None:
        return None
    policy = retry if retry is not None else POOL_RETRY
    done: "dict[int, sharding.ComponentResult]" = {}
    pending = list(tasks)
    retried = 0
    for round_index in range(policy.max_attempts):
        if not pending:
            break
        if round_index > 0:
            retried += len(pending)
        failed: "list[tuple[int, sharding.SubLineage]]" = []
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_init_worker,
                                     initargs=(payload,)) as pool:
                futures = [(pool.submit(_component_chunk, task), task)
                           for task in pending]
                for future, task in futures:
                    try:
                        result = future.result()
                        done[result.index] = result
                    except Exception:
                        # A worker crash breaks every sibling future of the
                        # round; collect them all for the next fresh pool.
                        failed.append(task)
        except Exception:
            # The pool itself would not start (fork forbidden) or tore down
            # uncleanly: everything not yet delivered goes to the next round.
            failed = [task for task in pending if task[0] not in done]
        pending = failed
    degraded = len(pending)
    for index, sub in pending:
        # The last line of defence runs in-process: bitwise the same kernel,
        # and a deterministic error now propagates instead of being retried.
        done[index] = sharding.solve_component(sub, index, mode=mode,
                                               node_budget=node_budget,
                                               keep_circuit=keep_circuits)
    return ComponentPoolOutcome(
        results=tuple(done[index] for index, _ in tasks),
        retried=retried, degraded=degraded)


def parallel_brute_values(artefact: "tuple[str, Any]", n_endogenous: int,
                          workers: int,
                          index: ValueIndex = SHAPLEY
                          ) -> "dict[Fact, Fraction] | None":
    """Every index value of the brute backend, strata sharded across a pool.

    The ``2^n`` coalition evaluations are chunked by coalition size; each
    worker returns per-fact integer pair partials over its strata, which add
    up componentwise (integer addition — summation order is irrelevant) to
    the same conditioned vector pairs the serial table read-off produces; the
    parent then applies ``index`` once per fact.  Returns ``None`` on
    pickling or pool failure (serial fallback).
    """
    payload = _initializer_payload(artefact[0], artefact[1], None)
    if payload is None:
        return None
    sizes = list(range(n_endogenous + 1))
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            results = list(pool.map(_coalition_sizes_chunk, _stripes(sizes, workers)))
    except Exception:
        return None
    pairs: "dict[Fact, tuple[list[int], list[int]]]" = {}
    for partial in results:
        for f, (plus, minus) in partial.items():
            if f not in pairs:
                pairs[f] = (list(plus), list(minus))
            else:
                total_plus, total_minus = pairs[f]
                for j, v in enumerate(plus):
                    total_plus[j] += v
                for j, v in enumerate(minus):
                    total_minus[j] += v
    return {f: index.combine(plus, minus, n_endogenous)
            for f, (plus, minus) in pairs.items()}


__all__ = ["ComponentPoolOutcome", "POOL_RETRY", "parallel_brute_values",
           "parallel_component_results", "parallel_fact_values"]
