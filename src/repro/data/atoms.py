"""Relational atoms and facts.

An atom is ``R(t1, ..., tk)`` where ``R`` is a relation name and the ``ti`` are
terms.  A fact is an atom whose terms are all constants.  Databases are finite
sets of facts.

Equality, hashing and ordering are defined on the *content* (relation name and
terms) so that a :class:`Fact` and an :class:`Atom` describing the same ground
atom compare equal, and heterogeneous collections can be sorted
deterministically.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .terms import Constant, Term, Variable, const, is_constant, is_variable


def _term_key(term: Term) -> tuple[int, str]:
    """A total order on terms: constants before variables, then by name."""
    return (0, term.name) if is_constant(term) else (1, term.name)


class Atom:
    """A relational atom ``relation(terms...)`` over constants and variables."""

    __slots__ = ("relation", "terms", "_sort_key")

    def __init__(self, relation: str, terms: Iterable[Term]):
        if not relation:
            raise ValueError("relation name must be non-empty")
        terms = tuple(terms)
        if len(terms) == 0:
            raise ValueError("atoms must have positive arity")
        for t in terms:
            if not isinstance(t, (Constant, Variable)):
                raise TypeError(f"atom terms must be Constant or Variable, got {t!r}")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", terms)

    # -- immutability -----------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Atom objects are immutable")

    def __reduce__(self) -> tuple:
        # Slots + the __setattr__ guard defeat pickle's default state
        # restoration; rebuilding through the constructor keeps atoms (and
        # facts) picklable, which the process-pool engine backend relies on.
        return (type(self), (self.relation, self.terms))

    # -- value semantics ---------------------------------------------------
    def _key(self) -> tuple:
        # Memoised: sorting large databases compares each atom many times,
        # and the key tuple is immutable like everything else here.
        try:
            return self._sort_key
        except AttributeError:
            key = (self.relation, tuple(_term_key(t) for t in self.terms))
            object.__setattr__(self, "_sort_key", key)
            return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.relation == other.relation and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((self.relation, self.terms))

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self._key() < other._key()

    def __le__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self._key() <= other._key()

    # -- accessors ---------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    def constants(self) -> frozenset[Constant]:
        """The set of constants appearing in the atom (``const`` in the paper)."""
        return frozenset(t for t in self.terms if is_constant(t))

    def variables(self) -> frozenset[Variable]:
        """The set of variables appearing in the atom (``vars`` in the paper)."""
        return frozenset(t for t in self.terms if is_variable(t))

    def is_ground(self) -> bool:
        """``True`` iff the atom contains no variable, i.e. it is a fact."""
        return all(is_constant(t) for t in self.terms)

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply a substitution to the atom's terms.

        Terms not present in ``mapping`` are kept as-is.  If the result is
        ground, a :class:`Fact` is returned.
        """
        new_terms = tuple(mapping.get(t, t) for t in self.terms)
        if all(is_constant(t) for t in new_terms):
            return Fact(self.relation, new_terms)
        return Atom(self.relation, new_terms)

    def to_fact(self) -> "Fact":
        """Return this atom as a :class:`Fact` (raises if not ground)."""
        return Fact(self.relation, self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.terms!r})"


class Fact(Atom):
    """A ground atom: every term is a constant.

    ``Fact`` is a subclass of :class:`Atom` so facts can be used anywhere atoms
    are expected (e.g. as targets of homomorphisms), and a fact compares equal
    to an atom with the same relation name and terms.
    """

    __slots__ = ()

    def __init__(self, relation: str, terms: Iterable[Term]):
        super().__init__(relation, terms)
        for t in self.terms:
            if not is_constant(t):
                raise ValueError(f"facts must be ground, got non-constant term {t!r}")

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(t.name for t in self.terms)})"

    def __repr__(self) -> str:
        return f"Fact({self.relation!r}, {self.terms!r})"


def atom(relation: str, *terms: "Term | str | int") -> Atom:
    """Convenience constructor for atoms.

    String and integer arguments are interpreted as *constants*; pass
    :class:`Variable` objects (e.g. built with :func:`repro.data.terms.var`)
    for variables.
    """
    converted = tuple(t if isinstance(t, (Constant, Variable)) else const(t) for t in terms)
    if all(is_constant(t) for t in converted):
        return Fact(relation, converted)
    return Atom(relation, converted)


def fact(relation: str, *values: "Constant | str | int") -> Fact:
    """Convenience constructor for facts: ``fact("R", "a", 1)``."""
    return Fact(relation, tuple(const(v) for v in values))


def atoms_constants(atoms: Iterable[Atom]) -> frozenset[Constant]:
    """All constants occurring in a collection of atoms."""
    out: set[Constant] = set()
    for a in atoms:
        out.update(a.constants())
    return frozenset(out)


def atoms_variables(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """All variables occurring in a collection of atoms."""
    out: set[Variable] = set()
    for a in atoms:
        out.update(a.variables())
    return frozenset(out)


def atoms_terms(atoms: Iterable[Atom]) -> frozenset[Term]:
    """All terms occurring in a collection of atoms."""
    out: set[Term] = set()
    for a in atoms:
        out.update(a.terms)
    return frozenset(out)


def single_atom_c_homomorphisms(source: Atom, target: Atom,
                                fixed: frozenset[Constant]) -> list[dict[Term, Term]]:
    """All C-homomorphisms from the single atom ``source`` to the single atom ``target``.

    A C-homomorphism maps terms of ``source`` to terms of ``target`` position-wise,
    consistently (each source term gets a unique image), and fixes every constant in
    ``fixed`` (the set C).  Constants outside C may be renamed.  This is the notion
    used in the definition of a *q-leak* (Section 4.1 of the paper).
    """
    if source.relation != target.relation or source.arity != target.arity:
        return []
    mapping: dict[Term, Term] = {}
    for s, t in zip(source.terms, target.terms):
        if s in mapping:
            if mapping[s] != t:
                return []
        else:
            if is_constant(s) and s in fixed and s != t:
                return []
            mapping[s] = t
    return [mapping]
