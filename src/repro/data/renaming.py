"""C-isomorphic renamings of fact sets.

The reductions of Section 5 repeatedly rename parts of the construction "so
that no constant is shared besides those in C".  A *C-isomorphic renaming* is
an injective mapping of constants that is the identity on C.
"""

from __future__ import annotations

from typing import Iterable

from .atoms import Fact, atoms_constants
from .database import PartitionedDatabase
from .terms import Constant, FreshConstantFactory


def c_isomorphic_renaming(facts: Iterable[Fact],
                          fixed: frozenset[Constant],
                          avoid: frozenset[Constant],
                          factory: "FreshConstantFactory | None" = None,
                          ) -> dict[Constant, Constant]:
    """Compute a renaming of the constants of ``facts`` that fixes ``fixed``.

    Every constant outside ``fixed`` is mapped to a fresh constant that does not
    occur in ``avoid`` (nor in ``facts`` or ``fixed``).  The returned mapping can
    be applied with :func:`rename_facts`.
    """
    present = atoms_constants(facts)
    if factory is None:
        factory = FreshConstantFactory(avoid | present | fixed, prefix="ren")
    else:
        factory.avoid(avoid | present | fixed)
    mapping: dict[Constant, Constant] = {}
    for c in sorted(present):
        if c in fixed:
            mapping[c] = c
        else:
            mapping[c] = factory.fresh(c.name)
    return mapping


def rename_facts(facts: Iterable[Fact], mapping: dict[Constant, Constant]) -> frozenset[Fact]:
    """Apply a constant renaming to a set of facts."""
    return frozenset(f.substitute(mapping).to_fact() for f in facts)


def rename_apart(facts: Iterable[Fact],
                 fixed: frozenset[Constant],
                 avoid: frozenset[Constant],
                 factory: "FreshConstantFactory | None" = None) -> frozenset[Fact]:
    """Return a C-isomorphic copy of ``facts`` sharing no constant with ``avoid`` outside ``fixed``."""
    facts = list(facts)
    mapping = c_isomorphic_renaming(facts, fixed, avoid, factory)
    return rename_facts(facts, mapping)


def rename_partitioned_apart(pdb: PartitionedDatabase,
                             fixed: frozenset[Constant],
                             avoid: frozenset[Constant]) -> PartitionedDatabase:
    """C-isomorphically rename a partitioned database away from ``avoid``.

    This is the renaming used in Claim 5.1 to ensure that the input database
    shares no constant (outside C) with the construction.
    """
    mapping = c_isomorphic_renaming(pdb.all_facts, fixed, avoid)
    return pdb.rename_constants(mapping)
