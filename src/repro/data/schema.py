"""Relational schemas.

A schema is a finite set of relation names, each with a positive arity.  The
paper distinguishes *graph databases*, whose schema is binary.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .atoms import Atom
from .database import Database, PartitionedDatabase


class Schema:
    """A relational schema mapping relation names to arities."""

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int]):
        for name, arity in arities.items():
            if not name:
                raise ValueError("relation names must be non-empty")
            if arity <= 0:
                raise ValueError(f"relation {name!r} must have positive arity, got {arity}")
        object.__setattr__(self, "_arities", dict(arities))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Schema objects are immutable")

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Schema":
        """Infer a schema from a collection of atoms or facts."""
        arities: dict[str, int] = {}
        for a in atoms:
            existing = arities.get(a.relation)
            if existing is not None and existing != a.arity:
                raise ValueError(
                    f"inconsistent arity for relation {a.relation!r}: {existing} vs {a.arity}")
            arities[a.relation] = a.arity
        return cls(arities)

    @classmethod
    def from_database(cls, db: "Database | PartitionedDatabase") -> "Schema":
        """Infer a schema from a database."""
        if isinstance(db, PartitionedDatabase):
            return cls.from_atoms(db.all_facts)
        return cls.from_atoms(db.facts)

    @classmethod
    def graph(cls, *relation_names: str) -> "Schema":
        """A binary (graph) schema over the given relation names."""
        return cls({name: 2 for name in relation_names})

    def arity(self, relation: str) -> int:
        """The arity of a relation name (raises ``KeyError`` if unknown)."""
        return self._arities[relation]

    def relations(self) -> frozenset[str]:
        """The relation names of the schema."""
        return frozenset(self._arities)

    def is_binary(self) -> bool:
        """``True`` iff every relation has arity 2 (a graph schema)."""
        return all(a == 2 for a in self._arities.values())

    def __contains__(self, relation: str) -> bool:
        return relation in self._arities

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._arities))

    def __len__(self) -> int:
        return len(self._arities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._arities == other._arities

    def __hash__(self) -> int:
        return hash(frozenset(self._arities.items()))

    def validate(self, db: "Database | PartitionedDatabase") -> None:
        """Raise ``ValueError`` if a fact of the database does not fit the schema."""
        facts = db.all_facts if isinstance(db, PartitionedDatabase) else db.facts
        for f in facts:
            if f.relation not in self._arities:
                raise ValueError(f"fact {f} uses relation {f.relation!r} not in schema")
            if f.arity != self._arities[f.relation]:
                raise ValueError(
                    f"fact {f} has arity {f.arity}, schema says {self._arities[f.relation]}")

    def validate_atoms(self, atoms: Iterable[Atom]) -> None:
        """Raise ``ValueError`` if an atom does not fit the schema."""
        for a in atoms:
            if a.relation not in self._arities:
                raise ValueError(f"atom {a} uses relation {a.relation!r} not in schema")
            if a.arity != self._arities[a.relation]:
                raise ValueError(
                    f"atom {a} has arity {a.arity}, schema says {self._arities[a.relation]}")

    def __str__(self) -> str:
        inner = ", ".join(f"{r}/{a}" for r, a in sorted(self._arities.items()))
        return f"Schema({inner})"

    __repr__ = __str__
