"""Databases and partitioned databases.

A database is a finite set of facts.  Following Section 3 of the paper, all
databases handled by the Shapley / counting problems are *partitioned* into
endogenous facts ``Dn`` (the players / uncertain facts) and exogenous facts
``Dx`` (assumed facts, always present).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .atoms import Atom, Fact, atoms_constants
from .terms import Constant


class Database:
    """An unpartitioned database: a finite set of facts.

    ``Database`` behaves like an immutable set of :class:`Fact` objects with a
    few relational conveniences (active domain, per-relation indexes,
    restriction to a set of constants).
    """

    __slots__ = ("_facts", "_by_relation")

    def __init__(self, facts: Iterable[Fact] = ()):
        fs = frozenset(facts)
        for f in fs:
            if not isinstance(f, Fact):
                # Reject every non-Fact uniformly: a duck-typed object whose
                # is_ground() happens to return True must not slip into the
                # fact set, where it would break substitution and hashing.
                if isinstance(f, Atom) and not f.is_ground():
                    raise ValueError(f"databases contain only ground atoms, got {f}")
                raise TypeError(
                    f"databases contain Fact objects, got {type(f).__name__}: {f!r}")
        object.__setattr__(self, "_facts", fs)
        by_rel: dict[str, set[Fact]] = {}
        for f in fs:
            by_rel.setdefault(f.relation, set()).add(f)
        object.__setattr__(self, "_by_relation",
                           {r: frozenset(v) for r, v in by_rel.items()})

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Database objects are immutable")

    def __reduce__(self) -> tuple:
        # Rebuild through the constructor: slots plus the __setattr__ guard
        # defeat pickle's default state restoration.
        return (type(self), (self._facts,))

    # -- set protocol -------------------------------------------------------
    @property
    def facts(self) -> frozenset[Fact]:
        """The facts of the database as a frozenset."""
        return self._facts

    def __contains__(self, f: object) -> bool:
        return f in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts))

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._facts)

    def __or__(self, other: "Database | Iterable[Fact]") -> "Database":
        return Database(self._facts | _as_fact_set(other))

    def __and__(self, other: "Database | Iterable[Fact]") -> "Database":
        return Database(self._facts & _as_fact_set(other))

    def __sub__(self, other: "Database | Iterable[Fact]") -> "Database":
        return Database(self._facts - _as_fact_set(other))

    # -- relational conveniences --------------------------------------------
    def relations(self) -> frozenset[str]:
        """The relation names used in the database."""
        return frozenset(self._by_relation)

    def facts_of(self, relation: str) -> frozenset[Fact]:
        """All facts with the given relation name."""
        return self._by_relation.get(relation, frozenset())

    def constants(self) -> frozenset[Constant]:
        """The active domain of the database (all constants in its facts)."""
        return atoms_constants(self._facts)

    def is_graph_database(self) -> bool:
        """``True`` iff every fact is binary (the schema is a graph schema)."""
        return all(f.arity == 2 for f in self._facts)

    def restrict_to_constants(self, allowed: Iterable[Constant]) -> "Database":
        """The induced database ``D|_C``: facts whose constants all lie in ``allowed``.

        This is the operation used in Section 6.4 (Shapley value of constants).
        """
        allowed_set = frozenset(allowed)
        return Database(f for f in self._facts if f.constants() <= allowed_set)

    def rename_constants(self, mapping: Mapping[Constant, Constant]) -> "Database":
        """Apply a constant renaming to every fact."""
        return Database(f.substitute(mapping).to_fact() for f in self._facts)

    def __str__(self) -> str:
        return "{" + ", ".join(str(f) for f in sorted(self._facts)) + "}"

    def __repr__(self) -> str:
        return f"Database({sorted(self._facts)!r})"


def _as_fact_set(obj: "Database | Iterable[Fact]") -> frozenset[Fact]:
    if isinstance(obj, Database):
        return obj.facts
    return frozenset(obj)


class PartitionedDatabase:
    """A database partitioned into endogenous and exogenous facts.

    The pair ``D = (Dn, Dx)`` of Section 3: ``Dn`` are the endogenous facts
    (players of the Shapley game, counted subsets of the (generalized) model
    counting problems) and ``Dx`` are the exogenous facts (always present).
    The two parts must be disjoint.
    """

    __slots__ = ("_endogenous", "_exogenous")

    def __init__(self, endogenous: Iterable[Fact] = (), exogenous: Iterable[Fact] = ()):
        endo = frozenset(endogenous)
        exo = frozenset(exogenous)
        overlap = endo & exo
        if overlap:
            raise ValueError(f"endogenous and exogenous facts must be disjoint, "
                             f"overlap: {sorted(overlap)}")
        for f in endo | exo:
            if not isinstance(f, Fact):
                raise TypeError("partitioned databases contain Fact objects")
        object.__setattr__(self, "_endogenous", endo)
        object.__setattr__(self, "_exogenous", exo)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("PartitionedDatabase objects are immutable")

    def __reduce__(self) -> tuple:
        # See Database.__reduce__: constructor-based pickling for the
        # process-pool engine backend.
        return (type(self), (self._endogenous, self._exogenous))

    # -- accessors -----------------------------------------------------------
    @property
    def endogenous(self) -> frozenset[Fact]:
        """The endogenous facts ``Dn``."""
        return self._endogenous

    @property
    def exogenous(self) -> frozenset[Fact]:
        """The exogenous facts ``Dx``."""
        return self._exogenous

    @property
    def all_facts(self) -> frozenset[Fact]:
        """All facts of the database (``Dn ∪ Dx``)."""
        return self._endogenous | self._exogenous

    def to_database(self) -> Database:
        """Forget the partition and return a plain :class:`Database`."""
        return Database(self.all_facts)

    def constants(self) -> frozenset[Constant]:
        """The active domain of the whole database."""
        return atoms_constants(self.all_facts)

    def relations(self) -> frozenset[str]:
        """The relation names used anywhere in the database."""
        return frozenset(f.relation for f in self.all_facts)

    def is_purely_endogenous(self) -> bool:
        """``True`` iff ``Dx = ∅`` (the setting of Section 6.1)."""
        return not self._exogenous

    def __len__(self) -> int:
        return len(self._endogenous) + len(self._exogenous)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionedDatabase):
            return NotImplemented
        return (self._endogenous == other._endogenous
                and self._exogenous == other._exogenous)

    def __hash__(self) -> int:
        return hash((self._endogenous, self._exogenous))

    # -- derived databases -----------------------------------------------------
    def with_endogenous(self, facts: Iterable[Fact]) -> "PartitionedDatabase":
        """A new partitioned database with additional endogenous facts."""
        return PartitionedDatabase(self._endogenous | frozenset(facts), self._exogenous)

    def with_exogenous(self, facts: Iterable[Fact]) -> "PartitionedDatabase":
        """A new partitioned database with additional exogenous facts."""
        return PartitionedDatabase(self._endogenous, self._exogenous | frozenset(facts))

    def without(self, facts: Iterable[Fact]) -> "PartitionedDatabase":
        """A new partitioned database with the given facts removed from both parts."""
        removed = frozenset(facts)
        return PartitionedDatabase(self._endogenous - removed, self._exogenous - removed)

    def move_to_exogenous(self, facts: Iterable[Fact]) -> "PartitionedDatabase":
        """Move the given (endogenous) facts to the exogenous part."""
        moved = frozenset(facts)
        missing = moved - self._endogenous
        if missing:
            raise ValueError(f"facts not endogenous: {sorted(missing)}")
        return PartitionedDatabase(self._endogenous - moved, self._exogenous | moved)

    def rename_constants(self, mapping: Mapping[Constant, Constant]) -> "PartitionedDatabase":
        """Apply a constant renaming to every fact, preserving the partition."""
        return PartitionedDatabase(
            (f.substitute(mapping).to_fact() for f in self._endogenous),
            (f.substitute(mapping).to_fact() for f in self._exogenous),
        )

    def __str__(self) -> str:
        endo = ", ".join(str(f) for f in sorted(self._endogenous))
        exo = ", ".join(str(f) for f in sorted(self._exogenous))
        return f"(Dn={{{endo}}}, Dx={{{exo}}})"

    def __repr__(self) -> str:
        return (f"PartitionedDatabase(endogenous={sorted(self._endogenous)!r}, "
                f"exogenous={sorted(self._exogenous)!r})")


def partitioned(endogenous: Iterable[Fact] = (),
                exogenous: Iterable[Fact] = ()) -> PartitionedDatabase:
    """Convenience constructor for partitioned databases."""
    return PartitionedDatabase(endogenous, exogenous)


def purely_endogenous(facts: "Iterable[Fact] | Database") -> PartitionedDatabase:
    """Wrap an unpartitioned database as a purely endogenous partitioned database."""
    if isinstance(facts, Database):
        facts = facts.facts
    return PartitionedDatabase(facts, ())
