"""Terms of the relational model: constants and variables.

The paper fixes two disjoint infinite sets ``Const`` and ``Var``.  We model them
with two small immutable classes.  Both are hashable and totally ordered (within
their own kind) so that databases, supports and homomorphisms can be represented
with plain ``frozenset`` / ``dict`` objects and printed deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True, order=True)
class Constant:
    """A database constant (an element of ``Const``).

    The ``name`` may be any string; integers are accepted by the convenience
    constructor :func:`const` and converted to their decimal representation.
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"


@dataclass(frozen=True, slots=True, order=True)
class Variable:
    """A query variable (an element of ``Var``)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


#: A term is either a constant or a variable.
Term = Union[Constant, Variable]


def const(name: "str | int | Constant") -> Constant:
    """Build a :class:`Constant` from a string, an int, or another constant."""
    if isinstance(name, Constant):
        return name
    return Constant(str(name))


def var(name: "str | Variable") -> Variable:
    """Build a :class:`Variable` from a string or another variable."""
    if isinstance(name, Variable):
        return name
    return Variable(str(name))


def consts(*names: "str | int | Constant") -> tuple[Constant, ...]:
    """Build several constants at once: ``a, b = consts("a", "b")``."""
    return tuple(const(n) for n in names)


def variables(*names: "str | Variable") -> tuple[Variable, ...]:
    """Build several variables at once: ``x, y = variables("x", "y")``."""
    return tuple(var(n) for n in names)


def is_constant(term: Term) -> bool:
    """Return ``True`` iff ``term`` is a constant."""
    return isinstance(term, Constant)


def is_variable(term: Term) -> bool:
    """Return ``True`` iff ``term`` is a variable."""
    return isinstance(term, Variable)


class FreshConstantFactory:
    """A supply of fresh constants guaranteed to avoid a given set of names.

    The reductions of the paper repeatedly need constants "not appearing
    anywhere else" (fresh copies of a support, frozen variables of a canonical
    database, ...).  A factory is seeded with the constants to avoid and hands
    out deterministically named fresh constants.
    """

    def __init__(self, avoid: "frozenset[Constant] | set[Constant] | tuple[Constant, ...]" = (),
                 prefix: str = "fresh"):
        self._avoid = {c.name for c in avoid}
        self._prefix = prefix
        self._counter = 0

    def avoid(self, more: "set[Constant] | frozenset[Constant] | tuple[Constant, ...]") -> None:
        """Add further constants that must never be produced."""
        self._avoid.update(c.name for c in more)

    def fresh(self, hint: str = "") -> Constant:
        """Return a new constant, distinct from all previously produced or avoided ones."""
        while True:
            base = f"_{self._prefix}_{hint}_{self._counter}" if hint else f"_{self._prefix}_{self._counter}"
            self._counter += 1
            if base not in self._avoid:
                self._avoid.add(base)
                return Constant(base)

    def fresh_many(self, count: int, hint: str = "") -> tuple[Constant, ...]:
        """Return ``count`` distinct fresh constants."""
        return tuple(self.fresh(hint) for _ in range(count))
