"""Incidence graphs of atom sets.

The paper defines connectivity of a set of atoms ``S`` via its undirected
incidence graph ``G_S`` whose nodes are ``S ∪ term(S)`` and whose edges connect
each atom to the terms it contains.  Variable-connectivity additionally removes
the constant nodes.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from .atoms import Atom
from .terms import Constant, is_constant


def incidence_graph(atoms: Iterable[Atom],
                    exclude_constants: "frozenset[Constant] | None" = None) -> nx.Graph:
    """The incidence graph ``G_S`` of a set of atoms.

    Atom nodes are represented as ``("atom", index, atom)`` tuples so that
    repeated identical atoms in a *list* are distinguished; term nodes are
    ``("term", term)``.  If ``exclude_constants`` is given, those constant nodes
    (and their incident edges) are omitted — removing *all* constants yields the
    graph used to define variable-connectivity.
    """
    graph: nx.Graph = nx.Graph()
    excluded = exclude_constants if exclude_constants is not None else frozenset()
    for index, atom in enumerate(atoms):
        atom_node: Hashable = ("atom", index, atom)
        graph.add_node(atom_node)
        for term in atom.terms:
            if is_constant(term) and term in excluded:
                continue
            term_node = ("term", term)
            graph.add_node(term_node)
            graph.add_edge(atom_node, term_node)
    return graph


def is_connected_atom_set(atoms: Iterable[Atom],
                          exclude_constants: "frozenset[Constant] | None" = None) -> bool:
    """``True`` iff the (possibly constant-pruned) incidence graph is connected.

    The empty atom set is treated as connected.
    """
    atoms = list(atoms)
    if not atoms:
        return True
    graph = incidence_graph(atoms, exclude_constants)
    atom_nodes = [n for n in graph.nodes if n[0] == "atom"]
    if len(atom_nodes) <= 1:
        return True
    components = list(nx.connected_components(graph))
    for component in components:
        if any(n[0] == "atom" for n in component):
            return all(node in component for node in atom_nodes)
    return False


def atom_components(atoms: Iterable[Atom],
                    exclude_constants: "frozenset[Constant] | None" = None
                    ) -> list[list[Atom]]:
    """Partition a set of atoms into connected components of the incidence graph.

    With ``exclude_constants`` equal to all constants of the atoms, the result is
    the partition into *variable-connected* components (atoms sharing no variable,
    directly or transitively, end up in different components; atoms with no
    variable at all each form their own component).
    """
    atoms = list(atoms)
    if not atoms:
        return []
    graph = incidence_graph(atoms, exclude_constants)
    components: list[list[Atom]] = []
    for component in nx.connected_components(graph):
        members = [node[2] for node in sorted(
            (n for n in component if n[0] == "atom"), key=lambda n: n[1])]
        if members:
            components.append(members)
    return components
