"""Synthetic workload generators.

The paper has no experimental datasets; its constructions are exercised here on
synthetic instances.  These generators produce the standard instance families
used throughout the tests, examples and benchmarks:

* bipartite ``R(x), S(x, y), T(y)`` instances (the classic hard instance family
  for the non-hierarchical query ``q_RST``),
* random databases over an arbitrary schema,
* random / path / star / cycle graph databases for RPQs and CRPQs,
* an author–publication–keyword database for the Shapley-value-of-constants
  scenario of Section 6.4 (query ``q*``).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .atoms import Fact, fact
from .database import Database, PartitionedDatabase
from .schema import Schema
from .terms import Constant, const


def _rng(seed: "int | random.Random | None") -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def bipartite_rst_database(n_left: int, n_right: int,
                           edge_probability: float = 0.5,
                           seed: "int | None" = 0) -> Database:
    """A bipartite instance for the schema ``R/1, S/2, T/1``.

    Left nodes ``l0..l{n_left-1}`` carry ``R`` facts, right nodes ``r0..`` carry
    ``T`` facts, and each (left, right) pair carries an ``S`` edge independently
    with probability ``edge_probability``.  This is the instance family used in
    hardness proofs for the non-hierarchical query
    ``q_RST = ∃x∃y R(x) ∧ S(x, y) ∧ T(y)``.
    """
    rng = _rng(seed)
    facts: set[Fact] = set()
    lefts = [const(f"l{i}") for i in range(n_left)]
    rights = [const(f"r{j}") for j in range(n_right)]
    for left in lefts:
        facts.add(fact("R", left))
    for right in rights:
        facts.add(fact("T", right))
    for left in lefts:
        for right in rights:
            if rng.random() < edge_probability:
                facts.add(fact("S", left, right))
    return Database(facts)


def complete_bipartite_s_facts(n_left: int, n_right: int) -> frozenset[Fact]:
    """All ``S(l_i, r_j)`` facts of the complete bipartite graph."""
    return frozenset(fact("S", f"l{i}", f"r{j}")
                     for i in range(n_left) for j in range(n_right))


def random_database(schema: Schema, domain_size: int, n_facts: int,
                    seed: "int | None" = 0) -> Database:
    """A random database over ``schema`` with at most ``n_facts`` distinct facts."""
    rng = _rng(seed)
    domain = [const(f"c{i}") for i in range(domain_size)]
    relations = sorted(schema.relations())
    facts: set[Fact] = set()
    attempts = 0
    while len(facts) < n_facts and attempts < 50 * n_facts + 100:
        attempts += 1
        rel = rng.choice(relations)
        args = tuple(rng.choice(domain) for _ in range(schema.arity(rel)))
        facts.add(Fact(rel, args))
    return Database(facts)


def random_graph_database(n_nodes: int, n_edges: int, labels: Sequence[str] = ("A", "B"),
                          seed: "int | None" = 0) -> Database:
    """A random edge-labelled graph database."""
    rng = _rng(seed)
    nodes = [const(f"v{i}") for i in range(n_nodes)]
    facts: set[Fact] = set()
    attempts = 0
    while len(facts) < n_edges and attempts < 50 * n_edges + 100:
        attempts += 1
        label = rng.choice(list(labels))
        src = rng.choice(nodes)
        dst = rng.choice(nodes)
        facts.add(Fact(label, (src, dst)))
    return Database(facts)


def path_graph_database(labels: Sequence[str], start: str = "n0") -> Database:
    """A simple labelled path: ``labels[0](n0, n1), labels[1](n1, n2), ...``."""
    facts = []
    prev = const(start)
    for i, label in enumerate(labels):
        nxt = const(f"n{i + 1}") if start == "n0" else const(f"{start}_{i + 1}")
        facts.append(Fact(label, (prev, nxt)))
        prev = nxt
    return Database(facts)


def star_graph_database(n_rays: int, label: str = "A", center: str = "hub") -> Database:
    """A star graph: ``label(hub, leaf_i)`` for each ray."""
    hub = const(center)
    return Database(Fact(label, (hub, const(f"leaf{i}"))) for i in range(n_rays))


def cycle_graph_database(n_nodes: int, label: str = "A") -> Database:
    """A labelled directed cycle on ``n_nodes`` nodes."""
    nodes = [const(f"v{i}") for i in range(n_nodes)]
    return Database(Fact(label, (nodes[i], nodes[(i + 1) % n_nodes])) for i in range(n_nodes))


def layered_path_database(n_layers: int, width: int, label: str = "A",
                          seed: "int | None" = 0, edge_probability: float = 0.6) -> Database:
    """A layered DAG whose edges go from layer ``i`` to layer ``i+1``.

    Useful for RPQ experiments: paths from the unique source ``s`` to the unique
    target ``t`` traverse all layers.
    """
    rng = _rng(seed)
    facts: set[Fact] = set()
    source = const("s")
    target = const("t")
    layers: list[list[Constant]] = [[source]]
    for layer_index in range(n_layers):
        layers.append([const(f"u{layer_index}_{k}") for k in range(width)])
    layers.append([target])
    for i in range(len(layers) - 1):
        for u in layers[i]:
            any_edge = False
            for v in layers[i + 1]:
                if rng.random() < edge_probability:
                    facts.add(Fact(label, (u, v)))
                    any_edge = True
            if not any_edge:
                facts.add(Fact(label, (u, layers[i + 1][0])))
    return Database(facts)


def publication_keyword_database(n_authors: int, n_papers: int, n_keywords: int = 3,
                                 seed: "int | None" = 0,
                                 shapley_keyword: str = "Shapley") -> Database:
    """The author–publication–keyword workload of Section 6.4.

    Schema: ``Publication(authorID, paperID)`` and ``Keyword(paperID, keywordStr)``.
    Roughly half of the papers are tagged with ``shapley_keyword``, the others
    with generic keywords; authorship is assigned at random.
    """
    rng = _rng(seed)
    facts: set[Fact] = set()
    authors = [const(f"author{i}") for i in range(n_authors)]
    papers = [const(f"paper{j}") for j in range(n_papers)]
    keywords = [const(shapley_keyword)] + [const(f"kw{k}") for k in range(1, n_keywords)]
    for j, paper in enumerate(papers):
        keyword = keywords[0] if j % 2 == 0 else keywords[1 + (j % (len(keywords) - 1))]
        facts.add(Fact("Keyword", (paper, keyword)))
        n_coauthors = 1 + rng.randrange(min(2, n_authors))
        for author in rng.sample(authors, n_coauthors):
            facts.add(Fact("Publication", (author, paper)))
    return Database(facts)


def partition_randomly(db: "Database | Iterable[Fact]", exogenous_fraction: float = 0.3,
                       seed: "int | None" = 0) -> PartitionedDatabase:
    """Randomly split a database into endogenous and exogenous facts."""
    rng = _rng(seed)
    facts = sorted(db.facts if isinstance(db, Database) else frozenset(db))
    endo: list[Fact] = []
    exo: list[Fact] = []
    for f in facts:
        (exo if rng.random() < exogenous_fraction else endo).append(f)
    return PartitionedDatabase(endo, exo)


def partition_by_relation(db: "Database | Iterable[Fact]",
                          exogenous_relations: Iterable[str]) -> PartitionedDatabase:
    """Split a database: facts of the listed relations become exogenous."""
    exo_rels = frozenset(exogenous_relations)
    facts = db.facts if isinstance(db, Database) else frozenset(db)
    endo = [f for f in facts if f.relation not in exo_rels]
    exo = [f for f in facts if f.relation in exo_rels]
    return PartitionedDatabase(endo, exo)
