"""Single-probability query evaluation: SPQE and SPPQE (Section 3.3).

``SPQE_q`` restricts PQE to databases where every fact carries the *same*
probability ``p ∈ (0, 1]``; ``SPPQE_q`` allows probabilities in ``{p, 1}``
(the probability-1 facts playing the role of exogenous facts).  These are the
probabilistic counterparts of FMC and FGMC (Proposition 3.3); the conversion
functions based on the ``(1+z)^n`` generating-function identity live in
:mod:`repro.reductions.prop33`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING

from ..data.database import Database, PartitionedDatabase, purely_endogenous
from ..queries.base import BooleanQuery
from .pqe import PQEMethod, probability_of_query
from .tid import TupleIndependentDatabase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workspace.store import ArtifactStore


def sppqe(query: BooleanQuery, pdb: PartitionedDatabase,
          probability: "Fraction | int | float | str",
          method: PQEMethod = "auto",
          store: "ArtifactStore | None" = None) -> Fraction:
    """``SPPQE_q``: probability of the query when every endogenous fact has probability ``p``.

    The exogenous facts of ``pdb`` are the deterministic (probability-1) facts.
    ``store`` lets ``method="circuit"`` reuse attribution artefacts.
    """
    p = Fraction(probability)
    if not (0 < p <= 1):
        raise ValueError(f"probability must be in (0, 1], got {p}")
    tid = TupleIndependentDatabase.from_partitioned(pdb, endogenous_probability=p)
    return probability_of_query(query, tid, method, store=store)


def spqe(query: BooleanQuery, db: "Database | PartitionedDatabase",
         probability: "Fraction | int | float | str",
         method: PQEMethod = "auto",
         store: "ArtifactStore | None" = None) -> Fraction:
    """``SPQE_q``: probability of the query when *every* fact has probability ``p``.

    The input database must have no exogenous facts (SPQE is the restriction of
    SPPQE to purely endogenous databases) unless ``p == 1``.
    """
    p = Fraction(probability)
    if isinstance(db, PartitionedDatabase):
        if db.exogenous and p != 1:
            raise ValueError("SPQE requires a database without exogenous facts")
        pdb = db
    else:
        pdb = purely_endogenous(db)
    return sppqe(query, pdb, p, method, store=store)


def classify_pqe_restriction(tid: TupleIndependentDatabase) -> str:
    """Name the most specific PQE restriction the probabilistic database falls into.

    One of ``"PQE[1/2]"``, ``"PQE[1/2;1]"``, ``"SPQE"``, ``"SPPQE"``, ``"PQE"``
    (listed from most to least specific among the classes of Section 3.3).
    """
    image = tid.probability_image()
    if image == {Fraction(1, 2)}:
        return "PQE[1/2]"
    if image <= {Fraction(1, 2), Fraction(1)}:
        return "PQE[1/2;1]"
    if len(image) == 1:
        return "SPQE"
    if len(image - {Fraction(1)}) == 1:
        return "SPPQE"
    return "PQE"
