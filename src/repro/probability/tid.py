"""Tuple-independent probabilistic databases (Section 3.3).

A tuple-independent probabilistic database is a finite set of facts together
with a probability in ``(0, 1]`` for each fact; facts are present independently.
Facts with probability 1 are *deterministic* and correspond to the exogenous
facts of the associated partitioned database.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from ..data.atoms import Fact
from ..data.database import PartitionedDatabase


class TupleIndependentDatabase:
    """A tuple-independent probabilistic database ``(S, π)``."""

    __slots__ = ("_probabilities",)

    def __init__(self, probabilities: Mapping[Fact, "Fraction | int | float | str"]):
        converted: dict[Fact, Fraction] = {}
        for f, p in probabilities.items():
            if not isinstance(f, Fact):
                raise TypeError("keys must be Fact objects")
            prob = Fraction(p)
            if not (0 < prob <= 1):
                raise ValueError(f"probability of {f} must be in (0, 1], got {prob}")
            converted[f] = prob
        object.__setattr__(self, "_probabilities", converted)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("TupleIndependentDatabase objects are immutable")

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_partitioned(cls, pdb: PartitionedDatabase,
                         endogenous_probability: "Fraction | int | float | str" = Fraction(1, 2),
                         ) -> "TupleIndependentDatabase":
        """The probabilistic database with probability ``p`` on endogenous facts, 1 on exogenous."""
        p = Fraction(endogenous_probability)
        probabilities: dict[Fact, Fraction] = {f: p for f in pdb.endogenous}
        probabilities.update({f: Fraction(1) for f in pdb.exogenous})
        return cls(probabilities)

    @classmethod
    def uniform(cls, facts: Iterable[Fact],
                probability: "Fraction | int | float | str" = Fraction(1, 2)
                ) -> "TupleIndependentDatabase":
        """All facts share the same probability (no deterministic facts unless p = 1)."""
        p = Fraction(probability)
        return cls({f: p for f in facts})

    # -- accessors ------------------------------------------------------------------
    def probability(self, fact: Fact) -> Fraction:
        """The probability of a fact (0 if not present in the database)."""
        return self._probabilities.get(fact, Fraction(0))

    @property
    def facts(self) -> frozenset[Fact]:
        """All facts with positive probability."""
        return frozenset(self._probabilities)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._probabilities))

    def __len__(self) -> int:
        return len(self._probabilities)

    def items(self) -> Iterator[tuple[Fact, Fraction]]:
        """Iterate over (fact, probability) pairs in a deterministic order."""
        for f in sorted(self._probabilities):
            yield f, self._probabilities[f]

    def probability_image(self) -> frozenset[Fraction]:
        """The image of the probability assignment (used to classify PQE restrictions)."""
        return frozenset(self._probabilities.values())

    # -- associated partitioned database -----------------------------------------------
    def deterministic_facts(self) -> frozenset[Fact]:
        """Facts with probability exactly 1."""
        return frozenset(f for f, p in self._probabilities.items() if p == 1)

    def uncertain_facts(self) -> frozenset[Fact]:
        """Facts with probability strictly below 1."""
        return frozenset(f for f, p in self._probabilities.items() if p < 1)

    def to_partitioned(self) -> PartitionedDatabase:
        """The associated partitioned database: probability-1 facts are exogenous."""
        return PartitionedDatabase(self.uncertain_facts(), self.deterministic_facts())

    # -- classification ------------------------------------------------------------------
    def is_single_probability(self) -> bool:
        """SPQE input: all probabilities equal (and below 1, unless everything is certain)."""
        image = self.probability_image()
        return len(image) <= 1

    def is_single_proper_probability(self) -> bool:
        """SPPQE input: probabilities drawn from {p, 1} for a single p."""
        image = self.probability_image() - {Fraction(1)}
        return len(image) <= 1

    def __str__(self) -> str:
        inner = ", ".join(f"{f}: {p}" for f, p in self.items())
        return f"TID({inner})"
