"""Probabilistic query evaluation (PQE) and its restrictions.

``PQE_q`` asks for the probability that a tuple-independent probabilistic
database satisfies the query ``q``.  Three implementations are provided:

* ``method="brute"`` — sum over all possible worlds (exponential in the number
  of uncertain facts, works for any Boolean query),
* ``method="lineage"`` — build the monotone-DNF lineage over the uncertain
  facts and evaluate its probability with the decomposition-based engine
  (hom-closed queries only),
* ``method="lifted"`` — compile and evaluate a safe plan (safe (U)CQs only,
  polynomial time),
* ``method="circuit"`` — compile the lineage into a decision circuit and run
  its weighted bottom-up sweep (hom-closed queries only).  With a shared
  :class:`repro.workspace.ArtifactStore` the lineage and circuit are fetched
  from (and stored into) the same cache the attribution engines use, so a
  probability evaluation rides on the artefacts an attribution already paid
  for — zero recompiles.

``method="auto"`` tries lifted inference for (U)CQs, then lineage, then brute
force.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import TYPE_CHECKING, Literal

from ..counting.lineage import build_lineage
from ..queries.base import BooleanQuery
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .lifted import UnsafeQueryError, lifted_probability
from .tid import TupleIndependentDatabase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workspace.store import ArtifactStore

PQEMethod = Literal["auto", "brute", "lineage", "lifted", "circuit"]


def probability_brute_force(query: BooleanQuery, tid: TupleIndependentDatabase) -> Fraction:
    """Possible-worlds computation of ``Pr(D |= q)`` (exponential)."""
    deterministic = tid.deterministic_facts()
    uncertain = sorted(tid.uncertain_facts())
    total = Fraction(0)
    for size in range(len(uncertain) + 1):
        for chosen in itertools.combinations(uncertain, size):
            world = deterministic | frozenset(chosen)
            if not query.evaluate(world):
                continue
            weight = Fraction(1)
            chosen_set = frozenset(chosen)
            for f in uncertain:
                p = tid.probability(f)
                weight *= p if f in chosen_set else (1 - p)
            total += weight
    return total


def probability_via_lineage(query: BooleanQuery, tid: TupleIndependentDatabase) -> Fraction:
    """Lineage-based computation of ``Pr(D |= q)`` (hom-closed queries)."""
    pdb = tid.to_partitioned()
    lineage = build_lineage(query, pdb)
    return lineage.probability({f: tid.probability(f) for f in pdb.endogenous})


def probability_via_circuit(query: BooleanQuery, tid: TupleIndependentDatabase,
                            store: "ArtifactStore | None" = None,
                            node_budget: "int | None" = None) -> Fraction:
    """Circuit-backed ``Pr(D |= q)``: one weighted sweep of the compiled lineage.

    With ``store`` given, the lineage and the compiled circuit are looked up
    in the shared artifact store first and stored there on a miss — an
    attribution session over the same ``(query, database)`` content leaves
    exactly the artefacts this evaluation needs, and vice versa.  Raises
    :class:`repro.compile.CircuitBudgetError` when a fresh compilation would
    exceed ``node_budget`` (default :data:`repro.compile.DEFAULT_NODE_BUDGET`).
    """
    from ..compile import DEFAULT_NODE_BUDGET, compile_lineage
    from ..workspace.store import circuit_key, lineage_key

    pdb = tid.to_partitioned()
    lineage = None
    if store is not None:
        lineage = store.get(lineage_key(query, pdb))
    if lineage is None:
        lineage = build_lineage(query, pdb)
        if store is not None:
            store.put(lineage_key(query, pdb), lineage)
    compiled = None
    if store is not None:
        compiled = store.get(circuit_key(query, lineage))
    if compiled is None:
        budget = DEFAULT_NODE_BUDGET if node_budget is None else node_budget
        compiled = compile_lineage(lineage, node_budget=budget)
        if store is not None:
            store.put(circuit_key(query, lineage), compiled)
    return compiled.probability({f: tid.probability(f)
                                 for f in pdb.endogenous})


def probability_of_query(query: BooleanQuery, tid: TupleIndependentDatabase,
                         method: PQEMethod = "auto",
                         store: "ArtifactStore | None" = None) -> Fraction:
    """``PQE_q``: the probability that the probabilistic database satisfies the query.

    ``store`` only matters to the ``circuit`` method (artefact reuse); the
    other methods ignore it.
    """
    if method == "brute":
        return probability_brute_force(query, tid)
    if method == "lineage":
        return probability_via_lineage(query, tid)
    if method == "circuit":
        return probability_via_circuit(query, tid, store=store)
    if method == "lifted":
        if not isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            raise ValueError("lifted inference applies to CQs and UCQs only")
        return lifted_probability(query, tid)
    # auto
    if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        try:
            return lifted_probability(query, tid)
        except UnsafeQueryError:
            pass
    if query.is_hom_closed:
        return probability_via_lineage(query, tid)
    return probability_brute_force(query, tid)


def probability_half(query: BooleanQuery, tid: TupleIndependentDatabase,
                     method: PQEMethod = "auto") -> Fraction:
    """``PQE_q^{1/2}``: requires every fact to have probability exactly 1/2."""
    if tid.probability_image() != {Fraction(1, 2)}:
        raise ValueError("PQE[1/2] requires all probabilities to equal 1/2")
    return probability_of_query(query, tid, method)


def probability_half_one(query: BooleanQuery, tid: TupleIndependentDatabase,
                         method: PQEMethod = "auto") -> Fraction:
    """``PQE_q^{1/2;1}``: requires probabilities to be drawn from {1/2, 1}."""
    if not tid.probability_image() <= {Fraction(1, 2), Fraction(1)}:
        raise ValueError("PQE[1/2;1] requires all probabilities in {1/2, 1}")
    return probability_of_query(query, tid, method)
