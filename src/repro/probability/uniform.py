"""The canonical single-probability evaluation over count vectors.

Historically the library grew *two* implementations of "probability of the
query when every fact is true with the same probability ``p``": one on
:class:`repro.counting.Lineage` (delegating to the DNF's per-variable
decomposition engine) and one on :class:`repro.compile.CompiledDNF` (reading
the count vector off the circuit).  Both evaluate the same generating-function
identity, so this module is now the single entry point both delegate to:

    ``Pr(F) = Σ_k  count[k] · p^k · (1-p)^(n-k)``

where ``count`` is the size-stratified model-count (FGMC) vector — the
Proposition 3.3 bridge between counting and single-probability evaluation.
Any object exposing ``count_by_size()`` and ``n_variables`` qualifies:
lineages, monotone DNFs, compiled DNFs and compiled lineages alike.  Exact
``Fraction`` arithmetic throughout, so every route to the same count vector
produces bitwise-identical probabilities.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class _Countable(Protocol):
    """Anything with a size-stratified model count over ``n_variables``."""

    n_variables: int

    def count_by_size(self) -> "list[int]":
        ...  # pragma: no cover - protocol


def probability_from_count_vector(vector: Sequence[int], n_variables: int,
                                  p: "Fraction | int | float | str") -> Fraction:
    """``Σ_k vector[k] · p^k · (1-p)^(n-k)`` — the generating-function identity.

    ``vector[k]`` counts the satisfying assignments with exactly ``k`` of the
    ``n_variables`` variables true; missing trailing entries count as zero.
    """
    p = Fraction(p)
    if not (0 <= p <= 1):
        raise ValueError(f"probability must be in [0, 1], got {p}")
    n = n_variables
    return sum((Fraction(count) * p ** k * (1 - p) ** (n - k)
                for k, count in enumerate(vector) if count), Fraction(0))


def uniform_probability(countable: _Countable,
                        p: "Fraction | int | float | str") -> Fraction:
    """Probability that ``countable`` holds when every variable is true with
    probability ``p``.

    Accepts any object with ``count_by_size()`` and ``n_variables`` — a
    :class:`repro.counting.Lineage`, a :class:`repro.counting.MonotoneDNF`, a
    :class:`repro.compile.CompiledDNF` or a
    :class:`repro.compile.CompiledLineage` — and reads the probability off
    its count vector, so compiled and uncompiled routes agree exactly.
    """
    if not isinstance(countable, _Countable):
        raise TypeError(
            "uniform_probability needs an object with count_by_size() and "
            f"n_variables, got {type(countable).__name__}")
    return probability_from_count_vector(countable.count_by_size(),
                                         countable.n_variables, p)


__all__ = ["probability_from_count_vector", "uniform_probability"]
