"""Lifted inference: safe plans for (unions of) conjunctive queries.

The tractable side of the PQE / GMC dichotomies [4, 5, 9] is realized by
*lifted inference*: a safe query admits a plan built from

* **fact leaves** — ground atoms, whose probability is read off the database,
* **independent joins** — conjunctions of subqueries touching disjoint sets of
  facts (connected components over disjoint relation names),
* **independent projects** — elimination of a *separator variable* occurring in
  every atom and in a fixed position of every atom of each relation,
* **inclusion–exclusion** — for unions of CQs.

This procedure succeeds on every hierarchical self-join-free CQ (and many safe
UCQs).  When no rule applies it raises :class:`UnsafeQueryError`; this is a
*conservative* test (it does not implement the cancellation machinery of the
full Dalvi–Suciu algorithm), which is sufficient for every query appearing in
the paper and in this repository's catalog.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..data.atoms import Atom
from ..data.terms import Constant, Variable
from ..errors import UnsafeQueryError
from ..queries.cq import ConjunctiveQuery, product_of_cqs
from ..queries.ucq import UnionOfConjunctiveQueries, as_ucq
from .tid import TupleIndependentDatabase

# UnsafeQueryError historically lived in this module; it now sits in the
# package-wide hierarchy of repro.errors and is re-exported here unchanged.


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Plan:
    """Base class of safe-plan nodes."""

    def describe(self, indent: int = 0) -> str:
        """A human-readable, indented description of the plan."""
        raise NotImplementedError


@dataclass(frozen=True)
class FactLeafPlan(Plan):
    """The probability of a single (possibly not-yet-ground) atom."""

    atom: Atom

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"fact {self.atom}"


@dataclass(frozen=True)
class IndependentJoinPlan(Plan):
    """Product of the probabilities of independent subplans."""

    children: tuple[Plan, ...]

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "independent join"]
        lines.extend(child.describe(indent + 2) for child in self.children)
        return "\n".join(lines)


@dataclass(frozen=True)
class IndependentProjectPlan(Plan):
    """Elimination of a separator variable: ``1 - Π_a (1 - P(q[x→a]))``."""

    variable: Variable
    child: Plan

    def describe(self, indent: int = 0) -> str:
        return (" " * indent + f"independent project on {self.variable}\n"
                + self.child.describe(indent + 2))


@dataclass(frozen=True)
class InclusionExclusionPlan(Plan):
    """Inclusion–exclusion over the disjuncts of a union."""

    terms: tuple[tuple[int, Plan], ...]

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "inclusion-exclusion"]
        for sign, child in self.terms:
            lines.append(" " * (indent + 2) + f"sign {sign:+d}")
            lines.append(child.describe(indent + 4))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def safe_plan(query: "ConjunctiveQuery | UnionOfConjunctiveQueries") -> Plan:
    """Compile a safe plan for the query, or raise :class:`UnsafeQueryError`."""
    ucq_view = as_ucq(query).minimized()
    if len(ucq_view.disjuncts) == 1:
        return _compile_cq(ucq_view.disjuncts[0], frozenset())
    terms: list[tuple[int, Plan]] = []
    disjuncts = ucq_view.disjuncts
    for subset_size in range(1, len(disjuncts) + 1):
        sign = 1 if subset_size % 2 == 1 else -1
        for subset in itertools.combinations(disjuncts, subset_size):
            conjunction = product_of_cqs(list(subset)).core()
            terms.append((sign, _compile_cq(conjunction, frozenset())))
    return InclusionExclusionPlan(tuple(terms))


def is_safe(query: "ConjunctiveQuery | UnionOfConjunctiveQueries") -> bool:
    """Whether the compiler finds a safe plan (conservative safety test)."""
    try:
        safe_plan(query)
        return True
    except UnsafeQueryError:
        return False


def _compile_cq(query: ConjunctiveQuery, bound: frozenset[Variable]) -> Plan:
    """Compile a CQ, treating the variables of ``bound`` as constants."""
    atoms = tuple(dict.fromkeys(query.atoms))

    def free_vars(atom: Atom) -> frozenset[Variable]:
        return frozenset(v for v in atom.variables() if v not in bound)

    # Rule 1: every atom is (effectively) ground -> independent join of fact leaves,
    # provided no relation supports both a ground atom and a non-ground atom
    # elsewhere (which could create correlations).
    if all(not free_vars(a) for a in atoms):
        if len(atoms) == 1:
            return FactLeafPlan(atoms[0])
        return IndependentJoinPlan(tuple(FactLeafPlan(a) for a in atoms))

    # Rule 2: split into connected components over the *free* variables.
    components = _components_by_free_variables(atoms, bound)
    if len(components) > 1:
        # Components must be pairwise independent: no shared relation name.
        names_seen: set[str] = set()
        for component in components:
            names = {a.relation for a in component}
            if names & names_seen:
                raise UnsafeQueryError(
                    f"components of {query} share relation names {sorted(names & names_seen)}")
            names_seen |= names
        children = tuple(_compile_cq(ConjunctiveQuery(tuple(component)), bound)
                         for component in components)
        return IndependentJoinPlan(children)

    # Rule 3: independent project on a separator variable.
    separator = _find_separator(atoms, bound)
    if separator is not None:
        child = _compile_cq(query, bound | {separator})
        return IndependentProjectPlan(separator, child)

    raise UnsafeQueryError(
        f"no safe-plan rule applies to {query} (bound variables: {sorted(v.name for v in bound)}); "
        "the query is unsafe or beyond this conservative compiler")


def _components_by_free_variables(atoms: tuple[Atom, ...], bound: frozenset[Variable]
                                  ) -> list[list[Atom]]:
    """Connected components of atoms linked by shared *free* variables."""
    remaining = list(range(len(atoms)))
    components: list[list[Atom]] = []
    while remaining:
        seed = remaining.pop(0)
        component = {seed}
        component_vars = {v for v in atoms[seed].variables() if v not in bound}
        changed = True
        while changed:
            changed = False
            for index in list(remaining):
                atom_vars = {v for v in atoms[index].variables() if v not in bound}
                if atom_vars & component_vars:
                    component.add(index)
                    component_vars |= atom_vars
                    remaining.remove(index)
                    changed = True
        components.append([atoms[i] for i in sorted(component)])
    return components


def _find_separator(atoms: tuple[Atom, ...], bound: frozenset[Variable]
                    ) -> "Variable | None":
    """A separator variable: free, occurring in every atom, at a common position per relation."""
    free_variables = sorted({v for a in atoms for v in a.variables() if v not in bound})
    for candidate in free_variables:
        if not all(candidate in a.variables() for a in atoms):
            continue
        per_relation_positions: dict[str, set[int]] = {}
        for a in atoms:
            positions = {i for i, t in enumerate(a.terms) if t == candidate}
            existing = per_relation_positions.get(a.relation)
            per_relation_positions[a.relation] = (positions if existing is None
                                                  else existing & positions)
        if all(per_relation_positions[rel] for rel in per_relation_positions):
            return candidate
    return None


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def evaluate_plan(plan: Plan, tid: TupleIndependentDatabase,
                  binding: "Mapping[Variable, Constant] | None" = None) -> Fraction:
    """Evaluate a safe plan against a tuple-independent database."""
    binding = dict(binding or {})
    domain = sorted({c for f in tid.facts for c in f.constants()})
    return _evaluate(plan, tid, binding, domain)


def _evaluate(plan: Plan, tid: TupleIndependentDatabase,
              binding: dict[Variable, Constant], domain: list[Constant]) -> Fraction:
    if isinstance(plan, FactLeafPlan):
        grounded = plan.atom.substitute(binding)
        if not grounded.is_ground():
            raise ValueError(f"atom {plan.atom} not ground under binding {binding}")
        return tid.probability(grounded.to_fact())
    if isinstance(plan, IndependentJoinPlan):
        result = Fraction(1)
        for child in plan.children:
            result *= _evaluate(child, tid, binding, domain)
            if result == 0:
                return Fraction(0)
        return result
    if isinstance(plan, IndependentProjectPlan):
        product_of_misses = Fraction(1)
        for value in domain:
            binding[plan.variable] = value
            p = _evaluate(plan.child, tid, binding, domain)
            del binding[plan.variable]
            product_of_misses *= (1 - p)
            if product_of_misses == 0:
                break
        return 1 - product_of_misses
    if isinstance(plan, InclusionExclusionPlan):
        total = Fraction(0)
        for sign, child in plan.terms:
            total += sign * _evaluate(child, tid, binding, domain)
        return total
    raise TypeError(f"unknown plan node {plan!r}")


def lifted_probability(query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
                       tid: TupleIndependentDatabase) -> Fraction:
    """Compile a safe plan and evaluate it (raises :class:`UnsafeQueryError` if unsafe)."""
    return evaluate_plan(safe_plan(query), tid)


def plan_description(query: "ConjunctiveQuery | UnionOfConjunctiveQueries") -> str:
    """The safe plan of a query as indented text (for documentation and examples)."""
    return safe_plan(query).describe()
