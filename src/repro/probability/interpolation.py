"""The generating-function bridge between FGMC and SPPQE (Proposition 3.3).

For a partitioned database with ``n`` endogenous facts and a probability
``p = z / (1 + z)`` on each of them (exogenous facts have probability 1), the
probability of the query satisfies::

    (1 + z)^n · Pr(D_z |= q) = Σ_j z^j · FGMC_j(q)(Dn, Dx)

Evaluating the left-hand side at ``n + 1`` distinct values of ``z`` therefore
determines the FGMC vector through a Vandermonde solve — and conversely a known
FGMC vector determines the probability at any ``p``.  This is the engine behind
both directions of ``FGMC ≡ SPPQE`` and behind the polynomial-time Shapley
pipeline for safe queries.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Sequence

from ..data.database import PartitionedDatabase
from ..linalg import assert_integer_vector, vandermonde_solve
from ..queries.base import BooleanQuery
from .pqe import PQEMethod, probability_of_query
from .tid import TupleIndependentDatabase

#: A PQE solver: given a query and a tuple-independent database, return the probability.
PQESolver = Callable[[BooleanQuery, TupleIndependentDatabase], Fraction]


def default_pqe_solver(method: PQEMethod = "auto") -> PQESolver:
    """A PQE solver using :func:`repro.probability.pqe.probability_of_query`."""

    def solver(query: BooleanQuery, tid: TupleIndependentDatabase) -> Fraction:
        return probability_of_query(query, tid, method=method)

    return solver


def fgmc_vector_via_pqe(query: BooleanQuery, pdb: PartitionedDatabase,
                        pqe_solver: "PQESolver | None" = None,
                        method: PQEMethod = "auto") -> list[int]:
    """Recover the FGMC vector from ``n + 1`` SPPQE evaluations (FGMC ≤ SPPQE).

    Every oracle call uses the *same* underlying partitioned database, as in
    Proposition 3.3.  When the supplied PQE solver runs in polynomial time (e.g.
    lifted inference on a safe query) the whole computation is polynomial.
    """
    solver = pqe_solver or default_pqe_solver(method)
    n = len(pdb.endogenous)
    if n == 0:
        satisfied = 1 if query.evaluate(pdb.exogenous) else 0
        return [satisfied]
    points: list[Fraction] = []
    values: list[Fraction] = []
    for t in range(n + 1):
        z = Fraction(t + 1)
        p = z / (1 + z)
        tid = TupleIndependentDatabase.from_partitioned(pdb, endogenous_probability=p)
        probability = solver(query, tid)
        points.append(z)
        values.append((1 + z) ** n * probability)
    coefficients = vandermonde_solve(points, values)
    return assert_integer_vector(coefficients, context="FGMC via SPPQE interpolation")


def sppqe_from_fgmc_vector(counts: Sequence[int], probability: Fraction) -> Fraction:
    """Compute the SPPQE probability from a known FGMC vector (SPPQE ≤ FGMC).

    ``counts[j]`` is the number of generalized supports of size ``j`` over ``n``
    endogenous facts (``n = len(counts) - 1``); every endogenous fact has the
    given probability.
    """
    p = Fraction(probability)
    if not (0 < p <= 1):
        raise ValueError(f"probability must lie in (0, 1], got {p}")
    n = len(counts) - 1
    if p == 1:
        return Fraction(1) if counts[n] else Fraction(0)
    z = p / (1 - p)
    total = sum(Fraction(counts[j]) * z ** j for j in range(n + 1))
    return total / (1 + z) ** n
