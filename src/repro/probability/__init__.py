"""Probabilistic query evaluation: TIDs, PQE, SPQE/SPPQE, lifted inference."""

from .interpolation import (
    default_pqe_solver,
    fgmc_vector_via_pqe,
    sppqe_from_fgmc_vector,
)
from .lifted import (
    FactLeafPlan,
    InclusionExclusionPlan,
    IndependentJoinPlan,
    IndependentProjectPlan,
    Plan,
    UnsafeQueryError,
    evaluate_plan,
    is_safe,
    lifted_probability,
    plan_description,
    safe_plan,
)
from .pqe import (
    probability_brute_force,
    probability_half,
    probability_half_one,
    probability_of_query,
    probability_via_circuit,
    probability_via_lineage,
)
from .spqe import classify_pqe_restriction, spqe, sppqe
from .tid import TupleIndependentDatabase
from .uniform import probability_from_count_vector, uniform_probability

__all__ = [
    "FactLeafPlan",
    "default_pqe_solver",
    "fgmc_vector_via_pqe",
    "sppqe_from_fgmc_vector",
    "InclusionExclusionPlan",
    "IndependentJoinPlan",
    "IndependentProjectPlan",
    "Plan",
    "TupleIndependentDatabase",
    "UnsafeQueryError",
    "classify_pqe_restriction",
    "evaluate_plan",
    "is_safe",
    "lifted_probability",
    "plan_description",
    "probability_brute_force",
    "probability_from_count_vector",
    "probability_half",
    "probability_half_one",
    "probability_of_query",
    "probability_via_circuit",
    "probability_via_lineage",
    "safe_plan",
    "spqe",
    "sppqe",
    "uniform_probability",
]
