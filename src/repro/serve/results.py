"""Typed, frozen response objects of the serving tier.

A served attribution wraps the session's :class:`repro.api.AttributionReport`
— already lossless and JSON-serialisable — with the *serving* facts a client
needs and the report cannot know: which tenant asked, the content-hash request
key (the coalescing identity), which admission lane the request took, whether
the response was coalesced onto another request's computation, and the
queue + compute wall time as seen by the service.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.results import AttributionReport
from .admission import AdmissionDecision


@dataclass(frozen=True)
class ServedAttribution:
    """One served request: the attribution report plus its serving envelope.

    ``coalesced`` is ``True`` when this response awaited another in-flight
    computation for the same ``(tenant, query, snapshot)`` content key instead
    of computing; coalesced responses carry the *same*
    :class:`~repro.api.AttributionReport` object (hence bitwise-identical
    values) as the request that computed.  ``wall_time_s`` is the service-side
    latency of *this* request — for a coalesced request that is mostly
    waiting, and typically far below the report's own compute time.
    """

    tenant: str
    query: str
    request_key: str
    lane: str
    coalesced: bool
    report: AttributionReport
    admission: AdmissionDecision
    wall_time_s: float

    @property
    def backend(self) -> str:
        """The backend that produced the values (from the report)."""
        return self.report.backend

    def to_json_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "query": self.query,
            "request_key": self.request_key,
            "lane": self.lane,
            "coalesced": self.coalesced,
            "wall_time_s": self.wall_time_s,
            "admission": self.admission.to_json_dict(),
            "report": self.report.to_json_dict(),
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        import json

        return json.dumps(self.to_json_dict(), indent=indent)


__all__ = ["ServedAttribution"]
