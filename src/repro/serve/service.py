"""The async multi-tenant attribution service.

:class:`AttributionService` is the serving façade over the layers below: each
tenant holds an :class:`~repro.workspace.AttributionWorkspace` (standing
snapshot + delta ops), every attribution runs through an
:class:`~repro.api.AttributionSession` on an executor thread (the asyncio loop
never blocks on exact kernels; with ``EngineConfig(workers > 1)`` the kernels
additionally shard across the existing process pool), and all tenants share
ONE artifact store — content-hash keys make safe plans, lineages and compiled
circuits identical queries produce identical artifacts, so tenant B's request
reuses what tenant A's compiled.

Three serving mechanisms live here:

* **Request coalescing** — concurrent requests for the same
  ``(tenant, query, snapshot)`` content key await one in-flight computation;
  all of them receive the *same* :class:`~repro.api.AttributionReport` object.
  The duplicate-burst workload ("millions of users" asking the trending
  question) costs one compile, not N.
* **Admission control** — every request is classified by the Figure 1b
  machinery plus a worst-case circuit-size estimate *before* any engine work
  (:mod:`repro.serve.admission`): FP queries take the fast lane, bounded
  exponential work takes a pool slot, over-budget work degrades to the
  sampled backend when the client allows, and is otherwise refused with a
  structured :class:`~repro.errors.ServiceOverloadError`.  A capacity gate
  bounds concurrently admitted pool work, so a burst of hard queries gets
  503s instead of an unbounded queue.
* **Deadlines** — a request may carry ``deadline_s``; a request still queued
  for a pool slot when its deadline passes never occupies a worker (the
  deadline *frees* the pool), and one already computing stops blocking its
  client.
* **Circuit breakers** — repeated failures or deadline misses on one
  ``tenant/lane`` trip that lane's breaker
  (:mod:`repro.reliability.breaker`): further requests are rerouted to the
  sampled lane when the client allows, or refused with a structured
  :class:`~repro.errors.CircuitOpenError` carrying ``retry_after_s``.  After
  a reset timeout the breaker half-opens and one probe decides recovery.

Every served request emits one JSON line on the ``repro.serve.request``
logger — tenant, query hash, verdict, lane, backend, shard axis,
coalesced-or-computed, wall time, outcome — the observability seed the
``/stats`` counters aggregate.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from ..api.config import INDICES, EngineConfig
from ..api.results import AttributionReport
from ..api.session import AttributionSession
from ..analysis.dichotomy import DichotomyVerdict, classify_svc
from ..data.database import PartitionedDatabase
from ..engine.svc_engine import engine_cache_stats
from ..errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
    ServiceOverloadError,
    UnknownTenantError,
)
from ..queries.base import BooleanQuery
from ..reliability import faults
from ..reliability.breaker import BreakerRegistry
from ..workspace.results import WhatIfBatch, WorkspaceRefresh
from ..workspace.workspace import DELTA_PREFIXES, parse_delta_spec
from ..workspace.store import (
    ArtifactStore,
    MemoryStore,
    database_digest,
    query_content_text,
)
from ..workspace.workspace import AttributionWorkspace
from .admission import AdmissionDecision, AdmissionPolicy, admit, degrade_decision
from .metrics import ServiceMetrics
from .results import ServedAttribution

#: One JSON line per served request lands here (stdlib logging; attach a
#: handler — or let it propagate to the root logger — to collect them).
request_logger = logging.getLogger("repro.serve.request")

#: Sentinel distinguishing "no deadline passed" (use the policy default) from
#: an explicit ``deadline_s=None`` ("this request really has no deadline").
_UNSET = object()


def request_key(tenant: str, query: BooleanQuery,
                snapshot: PartitionedDatabase, lane: str,
                index: str = "shapley") -> str:
    """The coalescing identity of a request: a stable content hash.

    Two requests coalesce exactly when they agree on tenant, query *content*
    (not object identity), snapshot content, admission lane, and value
    ``index`` — the inputs that fully determine the report an exact backend
    will produce.  The index component keeps a Shapley and a Banzhaf request
    over the same snapshot from ever coalescing onto one report (their
    *artefacts* are still shared through the store; only the reports differ).
    Built from the same injective renderings as the artifact-store keys, so
    the key is stable across processes.
    """
    text = "\x1e".join((tenant, query_content_text(query),
                        database_digest(snapshot), lane, index))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def apply_delta_spec(workspace: AttributionWorkspace, spec: str) -> str:
    """Apply one textual delta spec to a workspace; return a description.

    The spec syntax of the ``repro workspace`` CLI (parsed by the shared
    :func:`repro.workspace.parse_delta_spec`): ``'+F(a)'`` insert endogenous,
    ``'+x:F(a)'`` insert exogenous, ``'-F(a)'`` remove, ``'>F(a)'`` make
    exogenous, ``'<F(a)'`` make endogenous.
    """
    op, f, label = parse_delta_spec(spec)
    if op == "insert_exogenous":
        workspace.insert(f, exogenous=True)
    elif op == "insert":
        workspace.insert(f)
    else:
        getattr(workspace, op)(f)
    return label


class AttributionService:
    """Async, multi-tenant Shapley attribution over shared artifacts.

    Usage::

        service = AttributionService(store=DiskStore("artifacts/"))
        service.register_tenant("acme", pdb)
        served = await service.attribute("acme", query)
        served.report.ranking          # exact values, full provenance
        await service.refresh_tenant("acme", ["+S(a, b)"])   # tenant deltas
        service.stats()                # the live metrics surface

    ``config`` tunes the underlying sessions (backend override, workers,
    budgets); the sampled backend is reserved for the degraded lane, so a
    service-wide ``method="sampled"`` is rejected.  All tenants share the one
    ``store`` — safe because artifacts are content-addressed — while each
    holds its own workspace, so deltas never leak across tenants.
    """

    def __init__(self, *, store: "ArtifactStore | None" = None,
                 config: "EngineConfig | None" = None,
                 policy: "AdmissionPolicy | None" = None,
                 executor_workers: "int | None" = None):
        config = config if config is not None else EngineConfig()
        if config.method == "sampled":
            raise ConfigError(
                "AttributionService reserves the sampled backend for the "
                "degraded admission lane; configure budgets via "
                "AdmissionPolicy instead of EngineConfig(method='sampled')")
        self._config = replace(config, on_hard="exact")
        self._policy = policy if policy is not None else AdmissionPolicy(
            exact_size_limit=config.exact_size_limit,
            circuit_node_budget=config.circuit_node_budget)
        self._store: ArtifactStore = store if store is not None else MemoryStore()
        self._tenants: dict[str, AttributionWorkspace] = {}
        self._tenant_locks: dict[str, asyncio.Lock] = {}
        self._verdicts: dict[BooleanQuery, DichotomyVerdict] = {}
        self._inflight: "dict[str, asyncio.Future[AttributionReport]]" = {}
        self._coalesce = True
        self._pending_pooled = 0
        self._slots: "asyncio.Semaphore | None" = None  # created lazily on a loop
        self._metrics = ServiceMetrics()
        self._breakers = BreakerRegistry(
            failure_threshold=self._policy.breaker_failure_threshold,
            reset_timeout_s=self._policy.breaker_reset_s)
        workers = executor_workers if executor_workers is not None \
            else self._policy.max_inflight + 2
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._closed = False

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Shut the executor down (idempotent); pending work is not awaited."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AttributionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- tenancy ----------------------------------------------------------------
    def register_tenant(self, tenant: str,
                        pdb: PartitionedDatabase) -> AttributionWorkspace:
        """Create a tenant: its own workspace over the shared artifact store."""
        if not tenant:
            raise ConfigError("tenant names must be non-empty")
        if tenant in self._tenants:
            raise ConfigError(f"tenant {tenant!r} is already registered")
        workspace = AttributionWorkspace(pdb, config=self._config,
                                         store=self._store)
        self._tenants[tenant] = workspace
        return workspace

    def unregister_tenant(self, tenant: str) -> None:
        """Drop a tenant and its workspace (shared store entries remain)."""
        if tenant not in self._tenants:
            raise UnknownTenantError(f"no tenant registered as {tenant!r}")
        del self._tenants[tenant]
        self._tenant_locks.pop(tenant, None)

    def tenants(self) -> tuple[str, ...]:
        """The registered tenant names, sorted."""
        return tuple(sorted(self._tenants))

    def workspace(self, tenant: str) -> AttributionWorkspace:
        """The tenant's workspace (for programmatic delta ops and reads)."""
        try:
            return self._tenants[tenant]
        except KeyError:
            raise UnknownTenantError(
                f"no tenant registered as {tenant!r}") from None

    def _tenant_lock(self, tenant: str) -> asyncio.Lock:
        lock = self._tenant_locks.get(tenant)
        if lock is None:
            lock = self._tenant_locks.setdefault(tenant, asyncio.Lock())
        return lock

    async def refresh_tenant(self, tenant: str,
                             deltas: "list[str] | tuple[str, ...]" = ()
                             ) -> WorkspaceRefresh:
        """Apply textual delta specs to one tenant and refresh its workspace.

        Runs on the executor (a refresh re-attributes invalidated standing
        queries); per-tenant serialisation makes concurrent delta batches on
        one tenant apply in arrival order.  Other tenants' snapshots — and
        concurrent :meth:`attribute` calls, which read an immutable snapshot
        at admission time — are unaffected.
        """
        workspace = self.workspace(tenant)
        loop = asyncio.get_running_loop()
        async with self._tenant_lock(tenant):
            def apply_and_refresh() -> WorkspaceRefresh:
                for spec in deltas:
                    apply_delta_spec(workspace, spec)
                return workspace.refresh()
            return await loop.run_in_executor(self._executor, apply_and_refresh)

    async def what_if(self, tenant: str, scenarios, *,
                      query: "BooleanQuery | None" = None,
                      name: "str | None" = None,
                      probability="1/2",
                      index: "str | None" = None) -> WhatIfBatch:
        """Evaluate hypothetical scenarios against one tenant's standing snapshot.

        Delegates to :meth:`repro.workspace.AttributionWorkspace.what_if` on
        the executor: each scenario (a delta spec or a list of them) is
        answered by *conditioning* the tenant's standing lineage and circuit
        — fetched from the shared artifact store, so a batch following an
        attribution recompiles nothing — and the snapshot itself is never
        modified.  Per-tenant serialisation keeps scenario evaluation from
        interleaving with delta batches on the same tenant.
        """
        workspace = self.workspace(tenant)
        loop = asyncio.get_running_loop()
        async with self._tenant_lock(tenant):
            def run() -> WhatIfBatch:
                return workspace.what_if(scenarios, query=query, name=name,
                                         probability=probability, index=index)
            return await loop.run_in_executor(self._executor, run)

    # -- the serving path ---------------------------------------------------------
    def _verdict(self, query: BooleanQuery) -> DichotomyVerdict:
        """The memoised Figure 1b verdict (classification runs once per query)."""
        try:
            verdict = self._verdicts.get(query)
        except TypeError:           # unhashable query: classify per request
            return classify_svc(query)
        if verdict is None:
            verdict = classify_svc(query)
            self._verdicts[query] = verdict
        return verdict

    def _resolve_deadline(self, deadline_s) -> "tuple[float | None, float | None]":
        """``(deadline_s, absolute monotonic deadline)`` for one request."""
        if deadline_s is _UNSET:
            deadline_s = self._policy.default_deadline_s
        if deadline_s is None:
            return None, None
        if deadline_s <= 0:
            raise ConfigError(f"deadline_s must be positive, got {deadline_s}")
        return deadline_s, time.monotonic() + deadline_s

    def _session_config(self, lane: str, index: "str | None" = None) -> EngineConfig:
        config = self._config
        if index is not None and index != config.index:
            config = replace(config, index=index)
        if lane == "degraded":
            # Only reachable with index="shapley": attribute() disables the
            # degraded lane for other indices (the sampler is Shapley-only).
            return replace(config, method="sampled", on_hard="sample")
        return config

    def _compute_report(self, query: BooleanQuery, snapshot: PartitionedDatabase,
                        lane: str, deadline_at: "float | None",
                        index: "str | None" = None) -> AttributionReport:
        """The blocking attribution (executor thread).

        The deadline is re-checked here: a computation that waited in the
        executor queue past its deadline aborts before touching any engine
        work, so expired requests cannot occupy a worker.
        """
        if deadline_at is not None and time.monotonic() >= deadline_at:
            raise DeadlineExceededError(
                "request deadline elapsed before computation started")
        faults.check("serve.compute")
        session = AttributionSession(query, snapshot,
                                     self._session_config(lane, index),
                                     store=self._store)
        return session.report()

    async def _compute_task(self, future: "asyncio.Future[AttributionReport]",
                            query: BooleanQuery, snapshot: PartitionedDatabase,
                            lane: str, deadline_at: "float | None",
                            index: "str | None" = None) -> None:
        """Drive one (owner) computation: slot acquisition, executor run, result.

        Pooled/degraded lanes take a semaphore slot; with a deadline the slot
        wait itself is bounded, so a request whose deadline passes while
        queued resolves to :class:`DeadlineExceededError` without ever
        holding a slot — the pool is freed for live requests.
        """
        loop = asyncio.get_running_loop()
        acquired = False
        try:
            if lane in ("pooled", "degraded"):
                assert self._slots is not None
                if deadline_at is None:
                    await self._slots.acquire()
                else:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            "request deadline elapsed while queued for a pool slot")
                    try:
                        await asyncio.wait_for(self._slots.acquire(), remaining)
                    except asyncio.TimeoutError:
                        raise DeadlineExceededError(
                            "request deadline elapsed while queued for a pool "
                            "slot") from None
                acquired = True
                self._metrics.observe_inflight(
                    self._policy.max_inflight - self._slots._value)
            report = await loop.run_in_executor(
                self._executor, self._compute_report,
                query, snapshot, lane, deadline_at, index)
            if not future.done():
                future.set_result(report)
        except BaseException as error:  # noqa: BLE001 - relayed to awaiters
            if not future.done():
                future.set_exception(error)
            if isinstance(error, asyncio.CancelledError):
                raise
        finally:
            if acquired:
                self._slots.release()

    def _log_request(self, *, tenant: str, key: str, decision: AdmissionDecision,
                     lane: str, backend: "str | None", shard_axis: "str | None",
                     coalesced: bool, wall_time_s: float, outcome: str) -> None:
        """Emit the one structured JSON log line every request produces."""
        request_logger.info(json.dumps({
            "event": "serve.request",
            "tenant": tenant,
            "query_key": key[:16],
            "verdict": decision.verdict.complexity.value,
            "lane": lane,
            "backend": backend,
            "shard_axis": shard_axis,
            "coalesced": coalesced,
            "wall_time_s": round(wall_time_s, 6),
            "outcome": outcome,
        }, sort_keys=True))

    def _breaker_gate(self, tenant: str, decision: AdmissionDecision, *,
                      key: str, start: float, allow_degraded: bool,
                      index: str) -> "tuple[AdmissionDecision, object, str | None]":
        """Apply the per-tenant/lane circuit breaker to an admitted request.

        Returns ``(decision, breaker, note)``: the (possibly rerouted)
        decision, the breaker that will observe this request's outcome, and a
        ``degradation_reason`` entry when an open breaker pushed the request
        down to the sampled lane.  A request that can neither proceed nor
        degrade raises :class:`~repro.errors.CircuitOpenError` (the 503 with
        a real retry hint).
        """
        breaker = self._breakers.get(f"{tenant}/{decision.lane}")
        if breaker.allow():
            return decision, breaker, None
        degraded_breaker = self._breakers.get(f"{tenant}/degraded")
        can_degrade = (decision.lane in ("fast", "pooled")
                       and allow_degraded and index == "shapley"
                       and degraded_breaker.allow())
        if can_degrade:
            note = (f"breaker→sampled: circuit breaker open on lane "
                    f"{decision.lane!r} for tenant {tenant!r} "
                    f"({breaker.snapshot()['consecutive_failures']} consecutive "
                    "failures); rerouted to the Monte-Carlo sampled lane")
            self._metrics.record_breaker_degraded()
            return degrade_decision(decision, note), degraded_breaker, note
        retry_after = breaker.retry_after_s()
        self._metrics.record_rejection("circuit")
        self._log_request(tenant=tenant, key=key, decision=decision,
                          lane=decision.lane, backend=None, shard_axis=None,
                          coalesced=False,
                          wall_time_s=time.perf_counter() - start,
                          outcome="circuit_open")
        raise CircuitOpenError(
            f"circuit breaker open on lane {decision.lane!r} for tenant "
            f"{tenant!r} after repeated failures; retry in "
            f"{retry_after:.1f}s or send allow_degraded=true",
            tenant=tenant, lane=decision.lane, retry_after_s=retry_after)

    async def attribute(self, tenant: str, query: BooleanQuery, *,
                        allow_degraded: bool = True,
                        deadline_s=_UNSET,
                        index: "str | None" = None) -> ServedAttribution:
        """Serve one attribution request (the service's main entry point).

        Admission runs first (cheap, classifier-only): a rejected request
        raises :class:`~repro.errors.ServiceOverloadError` before any engine
        work.  Admitted requests coalesce onto an identical in-flight
        computation when one exists; otherwise they compute on the executor,
        through the shared artifact store.  ``deadline_s`` bounds the whole
        request (queue + compute); ``allow_degraded`` lets over-budget
        requests fall back to the sampled backend instead of being refused.
        ``index`` overrides the service's configured value index for this
        request (``"shapley"`` / ``"banzhaf"`` / ``"responsibility"``); the
        degraded (sampled) lane is Shapley-only, so a non-Shapley request
        never degrades — over budget, it is refused instead.
        """
        start = time.perf_counter()
        if index is not None and index not in INDICES:
            raise ConfigError(f"index must be one of {INDICES}, got {index!r}")
        effective_index = index if index is not None else self._config.index
        workspace = self.workspace(tenant)
        snapshot = workspace.pdb
        decision = admit(query, len(snapshot.endogenous), self._policy,
                         allow_degraded=(allow_degraded
                                         and effective_index == "shapley"),
                         verdict=self._verdict(query))
        key = request_key(tenant, query, snapshot, decision.lane,
                          effective_index)
        if decision.lane == "rejected":
            self._metrics.record_rejection("budget")
            self._log_request(tenant=tenant, key=key, decision=decision,
                              lane="rejected", backend=None, shard_axis=None,
                              coalesced=False,
                              wall_time_s=time.perf_counter() - start,
                              outcome="rejected")
            raise ServiceOverloadError(decision.reason, verdict=decision.verdict,
                                       reason="budget")
        decision, breaker, breaker_note = self._breaker_gate(
            tenant, decision, key=key, start=start,
            allow_degraded=allow_degraded, index=effective_index)
        if breaker_note is not None:
            # The lane changed, so the coalescing identity changes with it.
            key = request_key(tenant, query, snapshot, decision.lane,
                              effective_index)
        deadline_s, deadline_at = self._resolve_deadline(deadline_s)
        if self._slots is None:
            self._slots = asyncio.Semaphore(self._policy.max_inflight)
        loop = asyncio.get_running_loop()

        existing = self._inflight.get(key) if self._coalesce else None
        coalesced = existing is not None
        if coalesced:
            future = existing
        else:
            if (decision.lane in ("pooled", "degraded")
                    and self._pending_pooled
                    >= self._policy.max_inflight + self._policy.max_queued):
                self._metrics.record_rejection("capacity")
                self._log_request(tenant=tenant, key=key, decision=decision,
                                  lane=decision.lane, backend=None,
                                  shard_axis=None, coalesced=False,
                                  wall_time_s=time.perf_counter() - start,
                                  outcome="rejected")
                raise ServiceOverloadError(
                    f"{self._pending_pooled} pooled requests already admitted "
                    f"(max_inflight={self._policy.max_inflight} + "
                    f"max_queued={self._policy.max_queued}); retry shortly",
                    verdict=decision.verdict, reason="capacity",
                    retry_after_s=1.0)
            future = loop.create_future()
            # Suppress "exception was never retrieved" when every awaiter
            # timed out before the computation failed.
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception())
            self._inflight[key] = future
            if decision.lane in ("pooled", "degraded"):
                self._pending_pooled += 1
            task = asyncio.ensure_future(self._compute_task(
                future, query, snapshot, decision.lane, deadline_at,
                effective_index))

            def _cleanup(_task, key=key, lane=decision.lane) -> None:
                if self._inflight.get(key) is future:
                    del self._inflight[key]
                if lane in ("pooled", "degraded"):
                    self._pending_pooled -= 1
            task.add_done_callback(_cleanup)

        outcome = "ok"
        backend = shard_axis = None
        try:
            if deadline_at is None:
                report = await asyncio.shield(future)
            else:
                remaining = deadline_at - time.monotonic()
                try:
                    report = await asyncio.wait_for(asyncio.shield(future),
                                                    max(remaining, 0.0))
                except asyncio.TimeoutError:
                    raise DeadlineExceededError(
                        f"request deadline of {deadline_s}s elapsed",
                        deadline_s=deadline_s) from None
            backend = report.backend
            shard_axis = report.shard_axis
            if not coalesced:
                breaker.record_success()
        except DeadlineExceededError as error:
            if error.deadline_s is None and deadline_s is not None:
                error.deadline_s = deadline_s
            outcome = "deadline"
            if not coalesced:
                breaker.record_failure()
            raise
        except BaseException as error:
            outcome = "error"
            if not coalesced and not isinstance(error, asyncio.CancelledError):
                breaker.record_failure()
            raise
        finally:
            wall = time.perf_counter() - start
            self._metrics.record(lane=decision.lane,
                                 verdict=decision.verdict.complexity.value,
                                 coalesced=coalesced, outcome=outcome,
                                 wall_time_s=wall)
            self._log_request(tenant=tenant, key=key, decision=decision,
                              lane=decision.lane, backend=backend,
                              shard_axis=shard_axis, coalesced=coalesced,
                              wall_time_s=wall, outcome=outcome)
        if breaker_note is not None:
            report = replace(report, degradation_reason=(
                report.degradation_reason + (breaker_note,)))
        return ServedAttribution(tenant=tenant, query=str(query),
                                 request_key=key, lane=decision.lane,
                                 coalesced=coalesced, report=report,
                                 admission=decision,
                                 wall_time_s=time.perf_counter() - start)

    # -- observability ------------------------------------------------------------
    def set_coalescing(self, enabled: bool) -> None:
        """Toggle request coalescing (benchmarks measure both regimes)."""
        self._coalesce = bool(enabled)

    def store_stats(self) -> dict:
        """The shared store's counters (richer ``store_stats`` when offered)."""
        richer = getattr(self._store, "store_stats", None)
        return richer() if callable(richer) else dict(self._store.stats())

    def health(self) -> dict:
        """The rolled-up health verdict (what ``GET /healthz`` serves).

        ``status`` is the worst of three component verdicts:

        * **breakers** — ``unhealthy`` when every materialised breaker is
          open (nothing can be served), ``degraded`` when any is open or
          half-open, ``ok`` otherwise (including before any traffic);
        * **pool** — ``unhealthy`` at full saturation (admitted pooled work
          ≥ ``max_inflight + max_queued``: the next pooled request gets a
          capacity 503), ``degraded`` at ≥ half;
        * **store** — ``unhealthy`` when puts have failed but nothing was
          ever stored (persistence is dead), ``degraded`` on any put
          failure or quarantined/invalid entry.
        """
        order = ("ok", "degraded", "unhealthy")
        breakers = self._breakers.snapshot()
        states = [snap["state"] for snap in breakers.values()]
        if states and all(state == "open" for state in states):
            breaker_status = "unhealthy"
        elif any(state != "closed" for state in states):
            breaker_status = "degraded"
        else:
            breaker_status = "ok"
        capacity = self._policy.max_inflight + self._policy.max_queued
        saturation = self._pending_pooled / capacity if capacity else 0.0
        pool_status = ("unhealthy" if saturation >= 1.0
                       else "degraded" if saturation >= 0.5 else "ok")
        store = self.store_stats()
        damaged = store.get("quarantined", 0) + store.get("invalid", 0)
        put_failures = store.get("put_failures", 0)
        if put_failures and not store.get("stores", 0):
            store_status = "unhealthy"
        elif put_failures or damaged:
            store_status = "degraded"
        else:
            store_status = "ok"
        components = {
            "breakers": {"status": breaker_status, "breakers": breakers},
            "pool": {"status": pool_status,
                     "pending_pooled": self._pending_pooled,
                     "capacity": capacity,
                     "saturation": round(saturation, 6)},
            "store": {"status": store_status,
                      "put_failures": put_failures,
                      "quarantined": store.get("quarantined", 0),
                      "invalid": store.get("invalid", 0)},
        }
        status = max((c["status"] for c in components.values()),
                     key=order.index)
        return {"status": status, "components": components}

    def stats(self) -> dict:
        """The live metrics surface (what ``GET /stats`` serves).

        Aggregates the service's own request/coalescing/admission counters
        with the engine-LRU counters, the shared store's counters, and a
        per-tenant snapshot summary — every cache layer a request can hit,
        in one JSON-serialisable payload.
        """
        return {
            "service": self._metrics.snapshot(),
            "admission_policy": self._policy.to_json_dict(),
            "coalescing": {"enabled": self._coalesce,
                           "inflight": len(self._inflight)},
            "breakers": self._breakers.snapshot(),
            "engine_cache": engine_cache_stats(),
            "store": self.store_stats(),
            "tenants": {
                name: {"n_endogenous": len(ws.pdb.endogenous),
                       "n_exogenous": len(ws.pdb.exogenous),
                       "registered_queries": sorted(ws.queries()),
                       "pending_deltas": len(ws.pending_deltas()),
                       "snapshot_digest": ws.snapshot_digest()[:16]}
                for name, ws in sorted(self._tenants.items())
            },
        }


__all__ = ["AttributionService", "DELTA_PREFIXES", "apply_delta_spec",
           "request_key", "request_logger"]
