"""Admission control: the paper's tractability dichotomy as a load shedder.

A serving tier must decide what a request will cost *before* committing a
worker to it — otherwise one #P-hard query on a large instance starves every
well-behaved request behind it.  The paper hands the service exactly the
predictor it needs: the Figure 1b classifier says whether ``SVC_q`` is
polynomial at all, and for the exponential exact backends the instance size
bounds the work (a decision circuit over ``n`` variables has at most
``2^(n+1) - 1`` decision nodes, and the brute table has ``2^n`` rows), so
``EngineConfig.circuit_node_budget`` doubles as an admission budget.

Verdicts map to four lanes:

* ``fast``     — the classifier says FP: polynomial work (safe plan, or a
  circuit that compiles in polynomial size on these instances).  Never
  queued behind exponential work.
* ``pooled``   — the query is hard or unclassified but the instance is small
  enough that an exact exponential backend fits the declared budgets; the
  request takes a bounded pool slot.
* ``degraded`` — too big for exact work but the client allows estimates: the
  Monte-Carlo ``method="sampled"`` backend with its ``(ε, δ)`` guarantee.
* ``rejected`` — too big and the client insists on exact values: a
  structured :class:`repro.errors.ServiceOverloadError` (the 503), raised
  *before* any lineage is built or pool slot taken.

Capacity admission (bounding concurrently admitted pool work) lives in the
service itself — it depends on live state; this module is the pure,
per-request cost classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dichotomy import Complexity, DichotomyVerdict, classify_svc
from ..compile import DEFAULT_NODE_BUDGET
from ..errors import ConfigError
from ..queries.base import BooleanQuery

#: The admission lanes, in decreasing desirability.
LANES = ("fast", "pooled", "degraded", "rejected")


@dataclass(frozen=True)
class AdmissionPolicy:
    """The service-wide cost budgets admission control enforces.

    ``exact_size_limit`` mirrors :attr:`repro.api.EngineConfig.exact_size_limit`:
    the largest ``|Dn|`` for which an exponential exact backend is acceptable.
    ``circuit_node_budget`` additionally admits larger instances whose
    worst-case circuit still fits the compiler's node ceiling — the same
    number the engine enforces at compile time, so an admitted request can
    never blow past it by more than the engine's own counting fallback.
    ``max_inflight`` bounds concurrently *running* pooled/degraded requests;
    ``max_queued`` bounds how many more may wait for a slot before capacity
    rejections start.  ``default_deadline_s`` applies when a request carries
    no deadline of its own (``None`` = no deadline).

    ``breaker_failure_threshold`` consecutive failures (errors or deadline
    misses) on one ``tenant/lane`` trip that lane's circuit breaker
    (:class:`repro.reliability.CircuitBreaker`); after ``breaker_reset_s``
    the breaker half-opens and lets one probe through.
    """

    exact_size_limit: int = 16
    circuit_node_budget: int = DEFAULT_NODE_BUDGET
    max_inflight: int = 4
    max_queued: int = 64
    default_deadline_s: "float | None" = None
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 30.0

    def __post_init__(self) -> None:
        if self.exact_size_limit < 0:
            raise ConfigError(
                f"exact_size_limit must be >= 0, got {self.exact_size_limit}")
        if self.circuit_node_budget < 1:
            raise ConfigError(
                f"circuit_node_budget must be >= 1, got {self.circuit_node_budget}")
        if self.max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queued < 0:
            raise ConfigError(f"max_queued must be >= 0, got {self.max_queued}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigError(
                f"default_deadline_s must be positive or None, got {self.default_deadline_s}")
        if self.breaker_failure_threshold < 1:
            raise ConfigError(
                f"breaker_failure_threshold must be >= 1, got {self.breaker_failure_threshold}")
        if self.breaker_reset_s <= 0:
            raise ConfigError(
                f"breaker_reset_s must be positive, got {self.breaker_reset_s}")

    def to_json_dict(self) -> dict:
        return {"exact_size_limit": self.exact_size_limit,
                "circuit_node_budget": self.circuit_node_budget,
                "max_inflight": self.max_inflight,
                "max_queued": self.max_queued,
                "default_deadline_s": self.default_deadline_s,
                "breaker_failure_threshold": self.breaker_failure_threshold,
                "breaker_reset_s": self.breaker_reset_s}


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of classifying one request's cost before dispatch.

    ``estimated_nodes`` is the worst-case decision-circuit size over the
    instance's endogenous facts (``2^(n+1) - 1``, capped to stay printable) —
    the number compared against the node budget for the pooled lane.
    """

    lane: str
    verdict: DichotomyVerdict
    reason: str
    n_endogenous: int
    estimated_nodes: int

    def to_json_dict(self) -> dict:
        return {"lane": self.lane, "reason": self.reason,
                "n_endogenous": self.n_endogenous,
                "estimated_nodes": self.estimated_nodes,
                "verdict": {"complexity": self.verdict.complexity.value,
                            "reason": self.verdict.reason,
                            "query_class": self.verdict.query_class}}


#: Cap on the worst-case node estimate so the arithmetic (and the JSON it
#: lands in) stays bounded for absurd instance sizes.
_ESTIMATE_CAP = 2 ** 62


def estimate_circuit_nodes(n_endogenous: int) -> int:
    """Worst-case node count of a decision circuit over ``n`` variables.

    A (non-reduced) decision circuit branching on every variable along every
    path has at most ``2^(n+1) - 1`` nodes; the compiler's component and
    formula caches usually do far better, but admission control needs a bound
    that cannot under-promise, not a prediction.
    """
    if n_endogenous >= 61:
        return _ESTIMATE_CAP
    return 2 ** (n_endogenous + 1) - 1


def admit(query: BooleanQuery, n_endogenous: int, policy: AdmissionPolicy,
          *, allow_degraded: bool = True,
          verdict: "DichotomyVerdict | None" = None) -> AdmissionDecision:
    """Classify one request into its admission lane (pure; no engine work).

    ``verdict`` lets the caller pass a memoised classification (the service
    classifies each registered query once); omitted, the Figure 1b classifier
    runs here.  ``allow_degraded`` is the *client's* statement that sampled
    estimates are acceptable; without it an over-budget request is rejected.
    """
    verdict = verdict if verdict is not None else classify_svc(query)
    nodes = estimate_circuit_nodes(n_endogenous)
    if verdict.complexity is Complexity.FP:
        return AdmissionDecision(
            lane="fast", verdict=verdict, reason="classifier says FP: "
            "polynomial safe-plan/circuit work, no pool slot needed",
            n_endogenous=n_endogenous, estimated_nodes=nodes)
    hardness = ("#P-hard" if verdict.complexity is Complexity.SHARP_P_HARD
                else "unclassified")
    if n_endogenous <= policy.exact_size_limit:
        return AdmissionDecision(
            lane="pooled", verdict=verdict,
            reason=f"query is {hardness} but |Dn| = {n_endogenous} <= "
                   f"exact_size_limit = {policy.exact_size_limit}: exact "
                   "exponential work fits a bounded pool slot",
            n_endogenous=n_endogenous, estimated_nodes=nodes)
    if nodes <= policy.circuit_node_budget:
        return AdmissionDecision(
            lane="pooled", verdict=verdict,
            reason=f"query is {hardness} and |Dn| = {n_endogenous} > "
                   f"exact_size_limit, but the worst-case circuit "
                   f"({nodes} nodes) fits circuit_node_budget = "
                   f"{policy.circuit_node_budget}",
            n_endogenous=n_endogenous, estimated_nodes=nodes)
    if allow_degraded:
        return AdmissionDecision(
            lane="degraded", verdict=verdict,
            reason=f"query is {hardness}, |Dn| = {n_endogenous} busts every "
                   "exact budget, and the client allows estimates: Monte-Carlo "
                   "sampling with the (ε, δ) guarantee",
            n_endogenous=n_endogenous, estimated_nodes=nodes)
    return AdmissionDecision(
        lane="rejected", verdict=verdict,
        reason=f"query is {hardness}, |Dn| = {n_endogenous} busts "
               f"exact_size_limit = {policy.exact_size_limit} and the "
               f"worst-case circuit ({nodes} nodes) busts "
               f"circuit_node_budget = {policy.circuit_node_budget}; the "
               "client disallows degraded estimates",
        n_endogenous=n_endogenous, estimated_nodes=nodes)


def degrade_decision(decision: AdmissionDecision,
                     reason: str) -> AdmissionDecision:
    """Reroute an admitted decision to the ``degraded`` (sampled) lane.

    Used by the service when a tripped circuit breaker forecloses the
    decision's original lane: the verdict and cost estimates stand, only the
    lane changes, and ``reason`` records why (it also lands in the report's
    ``degradation_reason`` audit trail).
    """
    return AdmissionDecision(
        lane="degraded", verdict=decision.verdict, reason=reason,
        n_endogenous=decision.n_endogenous,
        estimated_nodes=decision.estimated_nodes)


__all__ = ["AdmissionDecision", "AdmissionPolicy", "LANES", "admit",
           "degrade_decision", "estimate_circuit_nodes"]
