"""Thread-safe counters of the serving tier — the live ``/stats`` surface.

The service handles requests on an asyncio loop but runs the exact kernels on
executor threads, so every counter here is guarded by one lock; ``snapshot()``
returns a consistent point-in-time copy (plain ints and dicts, directly JSON-
serialisable).  The counters are deliberately low-cardinality — by admission
lane, by dichotomy verdict, by outcome — so the surface stays cheap no matter
how many tenants or distinct queries the service sees.
"""

from __future__ import annotations

import threading


class ServiceMetrics:
    """Request, coalescing and admission counters of one :class:`AttributionService`.

    ``record(...)`` is called once per finished request (whatever its
    outcome); ``record_rejection`` / ``record_deadline`` count the admission
    and deadline failure paths.  All methods are safe to call from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._coalesced = 0
        self._computed = 0
        self._by_lane: dict[str, int] = {}
        self._by_verdict: dict[str, int] = {}
        self._by_outcome: dict[str, int] = {}
        self._rejected_capacity = 0
        self._rejected_budget = 0
        self._rejected_circuit = 0
        self._breaker_degraded = 0
        self._deadline_exceeded = 0
        self._errors = 0
        self._wall_time_s = 0.0
        self._peak_inflight = 0

    # -- recording ------------------------------------------------------------
    def record(self, *, lane: str, verdict: str, coalesced: bool,
               outcome: str, wall_time_s: float) -> None:
        """Count one finished request (served, degraded, or failed)."""
        with self._lock:
            self._requests += 1
            self._by_lane[lane] = self._by_lane.get(lane, 0) + 1
            self._by_verdict[verdict] = self._by_verdict.get(verdict, 0) + 1
            self._by_outcome[outcome] = self._by_outcome.get(outcome, 0) + 1
            if coalesced:
                self._coalesced += 1
            else:
                self._computed += 1
            if outcome == "deadline":
                self._deadline_exceeded += 1
            elif outcome == "error":
                self._errors += 1
            self._wall_time_s += wall_time_s

    def record_rejection(self, reason: str) -> None:
        """Count one refusal (``"capacity"``, ``"budget"`` or ``"circuit"``)."""
        with self._lock:
            self._requests += 1
            self._by_outcome["rejected"] = self._by_outcome.get("rejected", 0) + 1
            if reason == "capacity":
                self._rejected_capacity += 1
            elif reason == "circuit":
                self._rejected_circuit += 1
            else:
                self._rejected_budget += 1

    def record_breaker_degraded(self) -> None:
        """Count one request rerouted to the sampled lane by an open breaker."""
        with self._lock:
            self._breaker_degraded += 1

    def observe_inflight(self, inflight: int) -> None:
        """Track the high-water mark of concurrently admitted pool work."""
        with self._lock:
            if inflight > self._peak_inflight:
                self._peak_inflight = inflight

    # -- reading --------------------------------------------------------------
    def snapshot(self) -> dict:
        """A consistent, JSON-serialisable copy of every counter."""
        with self._lock:
            return {
                "requests": self._requests,
                "coalesced": self._coalesced,
                "computed": self._computed,
                "by_lane": dict(self._by_lane),
                "by_verdict": dict(self._by_verdict),
                "by_outcome": dict(self._by_outcome),
                "rejected_capacity": self._rejected_capacity,
                "rejected_budget": self._rejected_budget,
                "rejected_circuit": self._rejected_circuit,
                "breaker_degraded": self._breaker_degraded,
                "deadline_exceeded": self._deadline_exceeded,
                "errors": self._errors,
                "wall_time_s": round(self._wall_time_s, 6),
                "peak_inflight": self._peak_inflight,
            }


__all__ = ["ServiceMetrics"]
