"""repro.serve — the async multi-tenant attribution service.

The serving tier above sessions and workspaces: an asyncio
:class:`AttributionService` that runs the exact kernels on executor threads,
**coalesces** concurrent identical requests onto one computation, **admits**
requests through the paper's Figure 1b dichotomy plus a worst-case
circuit-size estimate (fast / pooled / degraded / rejected lanes, per-request
deadlines that free the pool), keeps per-tenant
:class:`~repro.workspace.AttributionWorkspace` state over one shared
content-addressed artifact store, and exposes everything through a
stdlib-only HTTP/JSON API (:class:`AttributionHTTPServer`, ``repro serve``)
plus a live ``/stats`` metrics surface.

Requests may name any value index (``"shapley"``, ``"banzhaf"``,
``"responsibility"``): the index is part of the coalescing key — a Shapley
and a Banzhaf request for the same query never share a result — while the
compiled artifacts they consume *are* shared through the store.  The
``POST /v1/what-if`` endpoint evaluates batches of hypothetical scenarios
against a tenant's standing circuit without mutating the snapshot.
"""

from .admission import (
    LANES,
    AdmissionDecision,
    AdmissionPolicy,
    admit,
    estimate_circuit_nodes,
)
from .http import AttributionHTTPServer, serve
from .metrics import ServiceMetrics
from .results import ServedAttribution
from .service import (
    AttributionService,
    apply_delta_spec,
    request_key,
    request_logger,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AttributionHTTPServer",
    "AttributionService",
    "LANES",
    "ServedAttribution",
    "ServiceMetrics",
    "admit",
    "apply_delta_spec",
    "estimate_circuit_nodes",
    "request_key",
    "request_logger",
    "serve",
]
