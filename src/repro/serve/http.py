"""A stdlib-only HTTP/JSON front for :class:`~repro.serve.AttributionService`.

No web framework: a small HTTP/1.1 server over ``asyncio.start_server``,
enough for the service's needs — every payload the service produces
(:class:`~repro.api.AttributionReport`, workspace refreshes, admission
decisions, the metrics surface) is already JSON-serialisable, and every
:class:`~repro.errors.ServiceError` carries its HTTP status and structured
body, so the transport layer is a thin, dependency-free shell.

Endpoints::

    GET  /healthz       health rollup: {"status": "ok"|"degraded"|"unhealthy",
                        "components": {...}} from breaker states, pool
                        saturation and store error rates (503 when unhealthy)
    GET  /stats         the live metrics surface (AttributionService.stats())
    POST /v1/tenants    register a tenant:
                        {"tenant": "acme",
                         "endogenous": ["S(a, b)", ...],
                         "exogenous":  ["R(a)", ...]}
    POST /v1/attribute  serve one attribution:
                        {"tenant": "acme", "query": "R(x), S(x, y)",
                         "variables": ["x", "y"],          # optional
                         "index": "banzhaf",               # optional
                         "allow_degraded": true,           # optional
                         "deadline_s": 2.5}                # optional
    POST /v1/deltas     apply delta specs and refresh:
                        {"tenant": "acme", "deltas": ["+S(a, c)", "-R(a)"]}
    POST /v1/what-if    evaluate hypothetical scenarios (snapshot untouched):
                        {"tenant": "acme", "query": "R(x), S(x, y)",
                         "scenarios": ["-S(a, b)", [">R(a)", "-S(a, b)"]],
                         "probability": "1/2",             # optional
                         "index": "responsibility"}        # optional

Errors come back as the matching status (400 on malformed input, 404 unknown
tenant/route, 503 admission rejection, 504 deadline) with the error's
``to_json_dict()`` payload, so HTTP clients see the same typed refusal a
programmatic caller would catch.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math

from ..data.database import PartitionedDatabase
from ..errors import ReproError, ServiceError
from ..io.query_text import parse_fact, parse_query
from .service import AttributionService

logger = logging.getLogger("repro.serve.http")

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}

#: Request bodies above this size are refused (the API's payloads are small).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _BadRequest(Exception):
    """Internal: a client error that maps to a 400 with its message."""


def _encode_response(status: int, payload: dict,
                     headers: "dict[str, str] | None" = None) -> bytes:
    body = json.dumps(payload, indent=2).encode("utf-8")
    reason = _REASONS.get(status, "Error")
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _error_headers(error: ServiceError) -> "dict[str, str] | None":
    """A real ``Retry-After`` header when the error carries a retry hint."""
    retry_after_s = getattr(error, "retry_after_s", None)
    if retry_after_s is None:
        return None
    return {"Retry-After": str(max(1, math.ceil(retry_after_s)))}


def _parse_database(payload: dict) -> PartitionedDatabase:
    endogenous = payload.get("endogenous", [])
    exogenous = payload.get("exogenous", [])
    if not isinstance(endogenous, list) or not isinstance(exogenous, list):
        raise _BadRequest("'endogenous' and 'exogenous' must be lists of "
                          "fact strings like 'S(a, b)'")
    return PartitionedDatabase(
        frozenset(parse_fact(text) for text in endogenous),
        frozenset(parse_fact(text) for text in exogenous))


def _require(payload: dict, field: str, kind=str):
    value = payload.get(field)
    if not isinstance(value, kind):
        raise _BadRequest(f"request body needs a {kind.__name__!s} field "
                          f"{field!r}")
    return value


class AttributionHTTPServer:
    """The asyncio HTTP server wrapping one :class:`AttributionService`.

    Usage::

        server = AttributionHTTPServer(service, host="127.0.0.1", port=0)
        await server.start()          # server.port is the bound port
        ...
        await server.stop()

    ``port=0`` binds an ephemeral port (what tests use); connections are
    handled one request at a time (``Connection: close``), which keeps the
    transport trivial — concurrency lives in the service, not the parser.
    """

    def __init__(self, service: AttributionService, *,
                 host: str = "127.0.0.1", port: int = 8480):
        self.service = service
        self.host = host
        self.port = port
        self._server: "asyncio.AbstractServer | None" = None

    async def start(self) -> "AttributionHTTPServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on http://%s:%d", self.host, self.port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- request handling ---------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._handle_request(reader)
        except Exception:  # noqa: BLE001 - last-resort: never kill the server
            logger.exception("unhandled error while serving a request")
            response = _encode_response(500, {"error": "InternalError",
                                              "message": "internal error"})
        try:
            writer.write(response)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away: nothing to deliver the response to
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader) -> bytes:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return _encode_response(400, {"error": "BadRequest",
                                              "message": "malformed request line"})
            method, path = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        return _encode_response(
                            400, {"error": "BadRequest",
                                  "message": "malformed Content-Length"})
            if content_length > MAX_BODY_BYTES:
                return _encode_response(
                    400, {"error": "BadRequest",
                          "message": f"body exceeds {MAX_BODY_BYTES} bytes"})
            raw = (await reader.readexactly(content_length)
                   if content_length else b"")
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return _encode_response(400, {"error": "BadRequest",
                                          "message": "truncated request"})
        try:
            status, payload = await self._dispatch(method, path, raw)
            return _encode_response(status, payload)
        except ServiceError as error:
            return _encode_response(error.http_status, error.to_json_dict(),
                                    headers=_error_headers(error))
        except _BadRequest as error:
            return _encode_response(400, {"error": "BadRequest",
                                          "message": str(error)})
        except (ReproError, ValueError, KeyError) as error:
            return _encode_response(400, {"error": type(error).__name__,
                                          "message": str(error)})

    async def _dispatch(self, method: str, path: str,
                        raw: bytes) -> "tuple[int, dict]":
        if path == "/healthz" and method == "GET":
            health = self.service.health()
            return (503 if health["status"] == "unhealthy" else 200), health
        if path == "/stats" and method == "GET":
            return 200, self.service.stats()
        if path == "/v1/tenants" and method == "POST":
            payload = self._json_body(raw)
            tenant = _require(payload, "tenant")
            workspace = self.service.register_tenant(tenant,
                                                     _parse_database(payload))
            return 200, {"tenant": tenant,
                         "n_endogenous": len(workspace.pdb.endogenous),
                         "n_exogenous": len(workspace.pdb.exogenous),
                         "snapshot_digest": workspace.snapshot_digest()}
        if path == "/v1/attribute" and method == "POST":
            payload = self._json_body(raw)
            tenant = _require(payload, "tenant")
            variables = payload.get("variables")
            query = parse_query(_require(payload, "query"),
                                frozenset(variables) if variables else None)
            kwargs = {}
            if "allow_degraded" in payload:
                kwargs["allow_degraded"] = bool(payload["allow_degraded"])
            if "deadline_s" in payload:
                kwargs["deadline_s"] = payload["deadline_s"]
            if "index" in payload:
                kwargs["index"] = _require(payload, "index")
            served = await self.service.attribute(tenant, query, **kwargs)
            return 200, served.to_json_dict()
        if path == "/v1/deltas" and method == "POST":
            payload = self._json_body(raw)
            tenant = _require(payload, "tenant")
            deltas = _require(payload, "deltas", list)
            refresh = await self.service.refresh_tenant(tenant, deltas)
            return 200, {"tenant": tenant,
                         "snapshot_digest":
                             self.service.workspace(tenant).snapshot_digest(),
                         "refresh": refresh.to_json_dict()}
        if path == "/v1/what-if" and method == "POST":
            payload = self._json_body(raw)
            tenant = _require(payload, "tenant")
            scenarios = _require(payload, "scenarios", list)
            kwargs = {}
            if "query" in payload:
                variables = payload.get("variables")
                kwargs["query"] = parse_query(
                    _require(payload, "query"),
                    frozenset(variables) if variables else None)
            if "name" in payload:
                kwargs["name"] = _require(payload, "name")
            if "probability" in payload:
                kwargs["probability"] = payload["probability"]
            if "index" in payload:
                kwargs["index"] = _require(payload, "index")
            batch = await self.service.what_if(tenant, scenarios, **kwargs)
            return 200, {"tenant": tenant, **batch.to_json_dict()}
        if path in ("/healthz", "/stats", "/v1/tenants", "/v1/attribute",
                    "/v1/deltas", "/v1/what-if"):
            return 405, {"error": "MethodNotAllowed",
                         "message": f"{method} not supported on {path}"}
        return 404, {"error": "NotFound", "message": f"no route {path!r}"}

    @staticmethod
    def _json_body(raw: bytes) -> dict:
        if not raw:
            raise _BadRequest("request body must be a JSON object")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload


async def serve(service: AttributionService, *, host: str = "127.0.0.1",
                port: int = 8480) -> None:
    """Run the HTTP server until cancelled (what ``repro serve`` calls)."""
    server = await AttributionHTTPServer(service, host=host, port=port).start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


__all__ = ["AttributionHTTPServer", "MAX_BODY_BYTES", "serve"]
