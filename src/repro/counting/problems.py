"""The model counting problems of Section 3.2: MC, GMC, FMC, FGMC.

Every problem is provided in two implementations:

* ``method="brute"`` — enumerate subsets of the endogenous facts and evaluate
  the query on each (exponential, works for any Boolean query),
* ``method="lineage"`` — build the monotone-DNF lineage and run the
  size-stratified model counter (requires a hom-closed query; usually far
  faster and the method the paper's "counting" viewpoint corresponds to).

``method="auto"`` picks the lineage method for hom-closed queries and falls
back to brute force otherwise.
"""

from __future__ import annotations

import itertools
import math
from typing import Literal

from ..data.database import Database, PartitionedDatabase, purely_endogenous
from ..queries.base import BooleanQuery
from .lineage import build_lineage

CountingMethod = Literal["auto", "brute", "lineage"]


def _resolve_method(query: BooleanQuery, method: CountingMethod) -> str:
    if method == "auto":
        return "lineage" if query.is_hom_closed else "brute"
    if method == "lineage" and not query.is_hom_closed:
        raise ValueError("lineage counting requires a hom-closed query")
    return method


def fgmc_vector(query: BooleanQuery, pdb: PartitionedDatabase,
                method: CountingMethod = "auto") -> list[int]:
    """The full FGMC vector: entry ``k`` counts generalized supports of size ``k``.

    A *generalized support* of size ``k`` is a subset ``S ⊆ Dn`` with ``|S| = k``
    and ``S ∪ Dx |= q``.
    """
    resolved = _resolve_method(query, method)
    if resolved == "lineage":
        return build_lineage(query, pdb).count_by_size()
    endogenous = sorted(pdb.endogenous)
    n = len(endogenous)
    counts = [0] * (n + 1)
    exogenous = pdb.exogenous
    for size in range(n + 1):
        for subset in itertools.combinations(endogenous, size):
            if query.evaluate(frozenset(subset) | exogenous):
                counts[size] += 1
    return counts


def fixed_size_generalized_model_count(query: BooleanQuery, pdb: PartitionedDatabase,
                                       size: int, method: CountingMethod = "auto") -> int:
    """FGMC_q(D, size): the number of generalized supports of exactly the given size."""
    if size < 0 or size > len(pdb.endogenous):
        return 0
    return fgmc_vector(query, pdb, method)[size]


def generalized_model_count(query: BooleanQuery, pdb: PartitionedDatabase,
                            method: CountingMethod = "auto") -> int:
    """GMC_q(D): the number of subsets ``S ⊆ Dn`` with ``S ∪ Dx |= q``."""
    return sum(fgmc_vector(query, pdb, method))


def fmc_vector(query: BooleanQuery, db: "Database | PartitionedDatabase",
               method: CountingMethod = "auto") -> list[int]:
    """The FMC vector over a purely endogenous database.

    If a partitioned database is passed it must have no exogenous facts
    (FMC is GMC restricted to ``Dx = ∅``).
    """
    pdb = _as_purely_endogenous(db)
    return fgmc_vector(query, pdb, method)


def fixed_size_model_count(query: BooleanQuery, db: "Database | PartitionedDatabase",
                           size: int, method: CountingMethod = "auto") -> int:
    """FMC_q(D, size) over a purely endogenous database."""
    pdb = _as_purely_endogenous(db)
    return fixed_size_generalized_model_count(query, pdb, size, method)


def model_count(query: BooleanQuery, db: "Database | PartitionedDatabase",
                method: CountingMethod = "auto") -> int:
    """MC_q(D): the number of sub-databases satisfying the query (no exogenous facts)."""
    pdb = _as_purely_endogenous(db)
    return generalized_model_count(query, pdb, method)


def complement_fgmc_vector(query: BooleanQuery, pdb: PartitionedDatabase,
                           method: CountingMethod = "auto") -> list[int]:
    """The complement vector: entry ``k`` counts size-``k`` subsets that are NOT generalized supports."""
    counts = fgmc_vector(query, pdb, method)
    n = len(pdb.endogenous)
    return [math.comb(n, k) - counts[k] for k in range(n + 1)]


def _as_purely_endogenous(db: "Database | PartitionedDatabase") -> PartitionedDatabase:
    if isinstance(db, PartitionedDatabase):
        if not db.is_purely_endogenous():
            raise ValueError("MC/FMC are defined on databases without exogenous facts; "
                             "use GMC/FGMC for partitioned databases")
        return db
    return purely_endogenous(db)
