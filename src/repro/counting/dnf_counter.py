"""Size-stratified model counting for monotone DNFs.

The lineage of a (C-)hom-closed query over a partitioned database is a
*monotone* DNF over the endogenous facts: a subset ``S ⊆ Dn`` satisfies the
query (together with ``Dx``) iff it contains all facts of some clause.  The
fixed-size generalized model counting problem FGMC therefore reduces to
computing, for every ``k``, the number of variable subsets of size ``k`` that
contain some clause.

This module implements an exact counter for that quantity using the classic
#SAT ingredients — branching on a most-frequent variable, decomposition into
variable-disjoint components, memoisation — specialised to monotone DNFs and
returning the whole *size-stratified* count vector at once (a polynomial in a
formal size variable, represented as a list of Python integers).  It plays the
role the paper's counting oracles (or an external model counter such as PySDD)
would play in practice.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache
from typing import Iterable, Mapping, Sequence


def binomial_row(n: int) -> list[int]:
    """The vector ``[C(n,0), C(n,1), ..., C(n,n)]``."""
    return [math.comb(n, k) for k in range(n + 1)]


def convolve(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Convolution of two coefficient vectors (product of generating polynomials)."""
    if not left or not right:
        return []
    out = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                out[i + j] += a * b
    return out


def add_vectors(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Component-wise sum of two coefficient vectors (padded with zeros)."""
    size = max(len(left), len(right))
    out = [0] * size
    for i, a in enumerate(left):
        out[i] += a
    for i, b in enumerate(right):
        out[i] += b
    return out


def pad(vector: Sequence[int], length: int) -> list[int]:
    """Pad a coefficient vector with zeros up to ``length`` entries."""
    out = list(vector)
    if len(out) < length:
        out.extend([0] * (length - len(out)))
    return out


class MonotoneDNF:
    """A monotone DNF over integer variables ``0 .. n_variables - 1``.

    ``clauses`` is a collection of variable sets; the formula is satisfied by an
    assignment (equivalently, by the *set* of true variables) iff the set
    includes some clause.  The always-true formula is represented by a clause
    equal to the empty set; the always-false formula by an empty clause list.
    """

    def __init__(self, n_variables: int, clauses: Iterable[frozenset[int]]):
        if n_variables < 0:
            raise ValueError("n_variables must be non-negative")
        clause_set = set()
        for clause in clauses:
            clause_frozen = frozenset(clause)
            for variable in clause_frozen:
                if not (0 <= variable < n_variables):
                    raise ValueError(f"variable {variable} out of range 0..{n_variables - 1}")
            clause_set.add(clause_frozen)
        self.n_variables = n_variables
        self.clauses = frozenset(_minimize_clauses(clause_set))

    # -- structure -------------------------------------------------------------
    def is_trivially_true(self) -> bool:
        """Whether the empty clause is present (every subset satisfies the formula)."""
        return frozenset() in self.clauses

    def is_trivially_false(self) -> bool:
        """Whether there is no clause (no subset satisfies the formula)."""
        return not self.clauses

    def variables_used(self) -> frozenset[int]:
        """Variables occurring in at least one clause."""
        out: set[int] = set()
        for clause in self.clauses:
            out |= clause
        return frozenset(out)

    def evaluate(self, true_variables: Iterable[int]) -> bool:
        """Whether the set of true variables satisfies the DNF."""
        true_set = frozenset(true_variables)
        return any(clause <= true_set for clause in self.clauses)

    # -- conditioning -----------------------------------------------------------
    def _conditioned_clauses(self, variable: int
                             ) -> tuple[frozenset[frozenset[int]], frozenset[frozenset[int]]]:
        """The clause sets after fixing ``variable`` to true / false (original indices).

        Fixing to true removes the variable from every clause (a clause reduced
        to the empty set makes the restriction trivially true); fixing to false
        discards the clauses containing it.
        """
        if not (0 <= variable < self.n_variables):
            raise ValueError(f"variable {variable} out of range 0..{self.n_variables - 1}")
        true_clauses = frozenset(_minimize_clauses(
            {clause - {variable} for clause in self.clauses}))
        false_clauses = frozenset(clause for clause in self.clauses
                                  if variable not in clause)
        return true_clauses, false_clauses

    def restrict(self, variable: int, value: bool) -> "MonotoneDNF":
        """The DNF obtained by fixing ``variable`` to ``value``.

        The result ranges over the remaining ``n_variables - 1`` variables,
        reindexed so that indices above ``variable`` shift down by one.
        """
        true_clauses, false_clauses = self._conditioned_clauses(variable)
        kept = true_clauses if value else false_clauses
        reindexed = [frozenset(v if v < variable else v - 1 for v in clause)
                     for clause in kept]
        return MonotoneDNF(self.n_variables - 1, reindexed)

    def conditioned_count_by_size(self, variable: int) -> tuple[list[int], list[int]]:
        """The count vectors of both restrictions of ``variable``, sharing the cache.

        Returns ``(true_vector, false_vector)`` where ``true_vector[k]`` counts
        the size-``k`` subsets of the *other* variables satisfying the DNF with
        ``variable`` fixed to true, and ``false_vector[k]`` with it fixed to
        false.  Unlike :meth:`restrict` (which reindexes), the computation keeps
        the original variable indices, so the memoised component decomposition
        is shared across the ``n`` conditionings of a batched Shapley run.
        """
        true_clauses, false_clauses = self._conditioned_clauses(variable)
        remaining = frozenset(range(self.n_variables)) - {variable}
        return (list(_with_free_vars(true_clauses, remaining)),
                list(_with_free_vars(false_clauses, remaining)))

    # -- counting ---------------------------------------------------------------
    def count_by_size(self) -> list[int]:
        """The vector ``[m_0, ..., m_n]`` where ``m_k`` counts satisfying subsets of size ``k``."""
        used = self.variables_used()
        free = self.n_variables - len(used)
        core = _count_vector(frozenset(self.clauses), frozenset(used))
        return pad(convolve(core, binomial_row(free)) if free else list(core),
                   self.n_variables + 1)

    def model_count(self) -> int:
        """The total number of satisfying subsets (of any size)."""
        return sum(self.count_by_size())

    def probability(self, probabilities: Mapping[int, Fraction]) -> Fraction:
        """Probability that independently sampled variables satisfy the DNF.

        ``probabilities[v]`` is the probability that variable ``v`` is true
        (missing variables default to probability 0, i.e. always false).
        """
        probs = {v: Fraction(probabilities.get(v, 0)) for v in range(self.n_variables)}
        return _probability(frozenset(self.clauses),
                            frozenset(self.variables_used()),
                            _freeze_probs(probs))

    def __str__(self) -> str:
        if self.is_trivially_true():
            return "TRUE"
        if self.is_trivially_false():
            return "FALSE"
        clause_strings = sorted("(" + " ∧ ".join(f"x{v}" for v in sorted(c)) + ")"
                                for c in self.clauses)
        return " ∨ ".join(clause_strings)


def _minimize_clauses(clauses: set[frozenset[int]]) -> set[frozenset[int]]:
    """Remove clauses that are supersets of other clauses (they are redundant)."""
    ordered = sorted(clauses, key=len)
    kept: list[frozenset[int]] = []
    for clause in ordered:
        if not any(existing <= clause for existing in kept):
            kept.append(clause)
    return set(kept)


@lru_cache(maxsize=200_000)
def _count_vector(clauses: frozenset[frozenset[int]],
                  variables: frozenset[int]) -> tuple[int, ...]:
    """Count satisfying subsets of ``variables`` by size.

    ``variables`` must contain every variable appearing in ``clauses``; variables
    not in any clause are free and handled by the caller (or by the component
    decomposition below).
    """
    if frozenset() in clauses:
        return tuple(binomial_row(len(variables)))
    if not clauses:
        return tuple([0] * (len(variables) + 1))

    # Component decomposition: split clauses into variable-disjoint groups.
    components = _split_components(clauses)
    if len(components) > 1:
        result: list[int] = [1]
        covered: set[int] = set()
        for component in components:
            component_vars = frozenset().union(*component)
            covered |= component_vars
            component_count = list(_count_vector(frozenset(component), component_vars))
            # Inclusion–exclusion is not needed: a subset satisfies the DNF iff it
            # satisfies *some* component, so we cannot simply multiply counts.
            # Instead we count the complement: subsets satisfying NO clause are
            # products of per-component non-satisfying subsets.
            complement = [math.comb(len(component_vars), k) - component_count[k]
                          for k in range(len(component_vars) + 1)]
            result = convolve(result, complement)
        free = variables - covered
        result = convolve(result, binomial_row(len(free)))
        total = binomial_row(len(variables))
        return tuple(total[k] - result[k] for k in range(len(variables) + 1))

    # Branch on the most frequent variable.
    frequency: dict[int, int] = {}
    for clause in clauses:
        for variable in clause:
            frequency[variable] = frequency.get(variable, 0) + 1
    branch_variable = max(sorted(frequency), key=lambda v: frequency[v])

    remaining = variables - {branch_variable}
    # Case "variable true": remove it from every clause.
    true_clauses = frozenset(clause - {branch_variable} for clause in clauses)
    true_vector = _with_free_vars(true_clauses, remaining)
    # Case "variable false": clauses containing it can no longer be satisfied.
    false_clauses = frozenset(clause for clause in clauses if branch_variable not in clause)
    false_vector = _with_free_vars(false_clauses, remaining)

    shifted_true = [0] + list(true_vector)
    combined = add_vectors(shifted_true, list(false_vector))
    return tuple(pad(combined, len(variables) + 1))


def _with_free_vars(clauses: frozenset[frozenset[int]], variables: frozenset[int]
                    ) -> tuple[int, ...]:
    """Count over ``variables`` allowing clauses to use only a subset of them."""
    used = frozenset().union(*clauses) if clauses else frozenset()
    free = variables - used
    inner = _count_vector(clauses, used)
    if not free:
        return tuple(pad(list(inner), len(variables) + 1))
    return tuple(pad(convolve(list(inner), binomial_row(len(free))), len(variables) + 1))


def _split_components(clauses: frozenset[frozenset[int]]) -> list[set[frozenset[int]]]:
    """Group clauses into connected components linked by shared variables."""
    remaining = set(clauses)
    components: list[set[frozenset[int]]] = []
    while remaining:
        seed = remaining.pop()
        component = {seed}
        component_vars = set(seed)
        changed = True
        while changed:
            changed = False
            for clause in list(remaining):
                if clause & component_vars:
                    component.add(clause)
                    component_vars |= clause
                    remaining.discard(clause)
                    changed = True
        components.append(component)
    return components


def _freeze_probs(probs: Mapping[int, Fraction]) -> tuple[tuple[int, Fraction], ...]:
    return tuple(sorted(probs.items()))


@lru_cache(maxsize=200_000)
def _probability(clauses: frozenset[frozenset[int]],
                 variables: frozenset[int],
                 probabilities: tuple[tuple[int, Fraction], ...]) -> Fraction:
    """Probability that an independent random subset of the variables satisfies the DNF."""
    probs = dict(probabilities)
    if frozenset() in clauses:
        return Fraction(1)
    if not clauses:
        return Fraction(0)

    components = _split_components(clauses)
    if len(components) > 1:
        none_satisfied = Fraction(1)
        for component in components:
            component_vars = frozenset().union(*component)
            sub_probs = _freeze_probs({v: probs[v] for v in component_vars})
            p_component = _probability(frozenset(component), component_vars, sub_probs)
            none_satisfied *= (1 - p_component)
        return 1 - none_satisfied

    frequency: dict[int, int] = {}
    for clause in clauses:
        for variable in clause:
            frequency[variable] = frequency.get(variable, 0) + 1
    branch_variable = max(sorted(frequency), key=lambda v: frequency[v])
    p_true = probs[branch_variable]

    true_clauses = frozenset(clause - {branch_variable} for clause in clauses)
    false_clauses = frozenset(clause for clause in clauses if branch_variable not in clause)
    remaining_vars = variables - {branch_variable}

    def restricted(clause_set: frozenset[frozenset[int]]) -> Fraction:
        used = frozenset().union(*clause_set) if clause_set else frozenset()
        sub_probs = _freeze_probs({v: probs[v] for v in used})
        return _probability(clause_set, used, sub_probs)

    del remaining_vars
    return p_true * restricted(true_clauses) + (1 - p_true) * restricted(false_clauses)


def clear_caches() -> None:
    """Clear the memoisation caches (useful in long benchmark runs)."""
    _count_vector.cache_clear()
    _probability.cache_clear()
