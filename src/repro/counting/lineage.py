"""Boolean lineage of hom-closed queries over partitioned databases.

For a (C-)hom-closed query ``q`` and a partitioned database ``D = (Dn, Dx)``,
a subset ``S ⊆ Dn`` satisfies ``S ∪ Dx |= q`` iff it contains the endogenous
part of some minimal support of ``q`` inside ``Dn ∪ Dx``.  The *lineage* is the
monotone DNF over the endogenous facts whose clauses are exactly these
endogenous parts.  All counting and probabilistic computations of the library
funnel through this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import cached_property
from typing import Mapping

from ..data.atoms import Fact
from ..data.database import PartitionedDatabase
from ..queries.base import BooleanQuery
from .dnf_counter import MonotoneDNF


@dataclass(frozen=True)
class Lineage:
    """The lineage DNF of a query over a partitioned database.

    ``variables`` fixes an ordering of the endogenous facts; ``dnf`` is the
    monotone DNF over the corresponding variable indexes.
    """

    variables: tuple[Fact, ...]
    dnf: MonotoneDNF

    @property
    def n_variables(self) -> int:
        """Number of endogenous facts."""
        return len(self.variables)

    @cached_property
    def _index(self) -> dict[Fact, int]:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits; every lookup below is O(1) instead of tuple.index.
        return {f: i for i, f in enumerate(self.variables)}

    def index_of(self, fact: Fact) -> int:
        """The variable index of an endogenous fact."""
        try:
            return self._index[fact]
        except KeyError:
            raise ValueError(f"{fact} is not a variable of this lineage") from None

    def count_by_size(self) -> list[int]:
        """FGMC vector: the number of generalized supports of each size ``0..n``."""
        return self.dnf.count_by_size()

    def model_count(self) -> int:
        """GMC value: the total number of generalized supports."""
        return self.dnf.model_count()

    def probability(self, probabilities: Mapping[Fact, Fraction]) -> Fraction:
        """Probability of the query when each endogenous fact is kept independently."""
        index = self._index
        by_index = {index[f]: Fraction(p) for f, p in probabilities.items()
                    if f in index}
        return self.dnf.probability(by_index)

    def uniform_probability(self, p: Fraction) -> Fraction:
        """Probability when every endogenous fact has the same probability ``p``.

        Delegates to the canonical count-vector read-off of
        :func:`repro.probability.uniform_probability`, shared with the
        compiled-circuit route — one implementation, bitwise-identical results.
        """
        from ..probability.uniform import uniform_probability

        return uniform_probability(self, p)

    def evaluate(self, chosen: "frozenset[Fact] | set[Fact]") -> bool:
        """Whether the subset of endogenous facts satisfies the query (with ``Dx``)."""
        index = self._index
        indexes = {index[f] for f in chosen if f in index}
        return self.dnf.evaluate(indexes)

    # -- conditioning -----------------------------------------------------------
    def conditioned_vectors(self, fact: Fact) -> tuple[list[int], list[int]]:
        """The per-fact FGMC vector pair of Claim A.1, from this one lineage.

        Returns the count vectors of ``(Dn \\ {μ}, Dx ∪ {μ})`` (condition
        ``x_μ := true``) and ``(Dn \\ {μ}, Dx)`` (condition ``x_μ := false``),
        both derived by conditioning the shared DNF instead of rebuilding the
        lineage of the two derived databases.
        """
        return self.dnf.conditioned_count_by_size(self.index_of(fact))

    def restricted(self, fact: Fact, value: bool) -> "Lineage":
        """The lineage with the fact fixed present (``True``) or absent (``False``).

        Equals the lineage of ``(Dn \\ {μ}, Dx ∪ {μ})`` respectively
        ``(Dn \\ {μ}, Dx)``: minimal supports are a property of the full fact
        set ``Dn ∪ Dx``, so conditioning the DNF is equivalent to rebuilding.
        """
        index = self.index_of(fact)
        variables = self.variables[:index] + self.variables[index + 1:]
        return Lineage(variables, self.dnf.restrict(index, value))


def build_lineage(query: BooleanQuery, pdb: PartitionedDatabase) -> Lineage:
    """Compute the lineage of a hom-closed query over a partitioned database.

    Raises ``ValueError`` for non-hom-closed queries, whose lineage would not be
    a monotone DNF; use the brute-force counters for those.
    """
    if not query.is_hom_closed:
        raise ValueError(
            "lineage-based counting requires a (C-)hom-closed query; "
            f"{type(query).__name__} is not")
    variables = tuple(sorted(pdb.endogenous))
    index: dict[Fact, int] = {f: i for i, f in enumerate(variables)}

    if query.evaluate(pdb.exogenous):
        dnf = MonotoneDNF(len(variables), [frozenset()])
        return Lineage(variables, dnf)

    clauses: set[frozenset[int]] = set()
    for support in query.minimal_supports_in(pdb.all_facts):
        endogenous_part = support - pdb.exogenous
        clauses.add(frozenset(index[f] for f in endogenous_part))
    return Lineage(variables, MonotoneDNF(len(variables), clauses))
