"""Model counting: lineages, size-stratified DNF counting, MC/GMC/FMC/FGMC.

Conditioning (``MonotoneDNF.restrict`` / ``conditioned_count_by_size`` and
``Lineage.conditioned_vectors``) powers the batched SVC engine: all per-fact
FGMC vector pairs are derived from one shared lineage.
"""

from .dnf_counter import MonotoneDNF, add_vectors, binomial_row, clear_caches, convolve, pad
from .lineage import Lineage, build_lineage
from .problems import (
    complement_fgmc_vector,
    fgmc_vector,
    fixed_size_generalized_model_count,
    fixed_size_model_count,
    fmc_vector,
    generalized_model_count,
    model_count,
)

__all__ = [
    "Lineage",
    "MonotoneDNF",
    "add_vectors",
    "binomial_row",
    "build_lineage",
    "clear_caches",
    "complement_fgmc_vector",
    "convolve",
    "fgmc_vector",
    "fixed_size_generalized_model_count",
    "fixed_size_model_count",
    "fmc_vector",
    "generalized_model_count",
    "model_count",
    "pad",
]
