"""Configuration of the attribution session.

One frozen, validated object replaces the ``method`` / ``counting_method`` /
``epsilon`` / ``delta`` / ``seed`` parameters that the legacy free functions
threaded by hand.  Invalid values raise :class:`repro.errors.ConfigError` at
construction time, so a session never fails halfway through a computation
because of a typo in a backend name.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..compile import DEFAULT_NODE_BUDGET
from ..engine.svc_engine import DEFAULT_PARALLEL_THRESHOLD, SHARD_POLICIES
from ..errors import ConfigError
from ..values import INDICES

#: Backends a caller may request explicitly.  ``auto`` delegates the choice to
#: the dichotomy-aware dispatch of :class:`repro.api.AttributionSession`; the
#: exact names are the :class:`repro.engine.SVCEngine` backends; ``sampled``
#: is the Monte-Carlo permutation-sampling estimator.
METHODS = ("auto", "safe", "circuit", "counting", "brute", "sampled")

#: FGMC backends of the ``counting`` method.
COUNTING_METHODS = ("auto", "brute", "lineage")

#: What to do when the classifier says the query is #P-hard (or unclassified)
#: and the instance exceeds ``exact_size_limit``.
ON_HARD_POLICIES = ("sample", "exact", "raise")


@dataclass(frozen=True)
class EngineConfig:
    """Validated, immutable configuration for :class:`repro.api.AttributionSession`.

    ``method="auto"`` (the default) lets the session consult the Figure 1b
    classifier and route to a safe plan, the lineage counter, brute force or
    Monte-Carlo sampling; any other value is an explicit override recorded in
    the session's :class:`repro.api.Explanation`.
    """

    #: Backend override; ``auto`` means dichotomy-aware dispatch.
    method: str = "auto"
    #: FGMC backend used when the ``counting`` method runs.
    counting_method: str = "auto"
    #: Additive error of the Monte-Carlo estimator (per fact).
    epsilon: float = 0.05
    #: Failure probability of the Monte-Carlo estimator (per fact).
    delta: float = 0.05
    #: Explicit sample count; ``None`` derives it from ``(epsilon, delta)``.
    n_samples: "int | None" = None
    #: RNG seed of the Monte-Carlo estimator (results are reproducible).
    seed: int = 0
    #: Policy for hard/unclassified queries on instances larger than
    #: ``exact_size_limit``: fall back to sampling, run an exponential exact
    #: backend anyway, or raise :class:`repro.errors.IntractableQueryError`.
    on_hard: str = "sample"
    #: Largest ``|Dn|`` for which a hard query is still solved exactly under
    #: ``method="auto"`` (exponential backends are fine at this scale).
    exact_size_limit: int = 16
    #: Verify the efficiency axiom (Σ values = v(Dn)) when building reports.
    check_efficiency: bool = True
    #: Worker processes for the exact engine backends; ``1`` keeps everything
    #: in-process.  With more workers the per-fact work (counting / safe) or
    #: the coalition-table fill (brute) shards across a process pool.
    workers: int = 1
    #: Smallest ``|Dn|`` for which a multi-worker engine actually spawns a
    #: pool; below it the serial path always runs (pool startup would dominate).
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    #: Ceiling on the node count of the ``circuit`` backend's compiled
    #: lineage; past it compilation aborts and the engine falls back to
    #: per-fact lineage conditioning (the ``counting`` backend).
    circuit_node_budget: int = DEFAULT_NODE_BUDGET
    #: Sharding axis of the exact engine's parallelism: ``"fact"`` stripes the
    #: fact list over workers (the PR 3 behaviour), ``"component"`` ships one
    #: variable-disjoint lineage island per task, ``"auto"`` picks the
    #: component axis whenever a cheap pre-pass finds at least two islands.
    shard: str = "auto"
    #: Power index the conditioned vector pairs are combined into:
    #: ``"shapley"`` (the paper's Claim A.1 weighting, the default),
    #: ``"banzhaf"`` (swing count over ``2^(n-1)``) or ``"responsibility"``
    #: (Chockler–Halpern ``1/(1+k)``).  The compiled artefacts are shared
    #: across indices; only the final weighting differs.
    index: str = "shapley"

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ConfigError(f"method must be one of {METHODS}, got {self.method!r}")
        if self.counting_method not in COUNTING_METHODS:
            raise ConfigError(f"counting_method must be one of {COUNTING_METHODS}, "
                              f"got {self.counting_method!r}")
        if self.on_hard not in ON_HARD_POLICIES:
            raise ConfigError(f"on_hard must be one of {ON_HARD_POLICIES}, "
                              f"got {self.on_hard!r}")
        if not (0 < self.epsilon < 1) or not (0 < self.delta < 1):
            raise ConfigError("epsilon and delta must lie strictly between 0 and 1")
        if self.n_samples is not None and self.n_samples <= 0:
            raise ConfigError(f"n_samples must be positive, got {self.n_samples}")
        if self.exact_size_limit < 0:
            raise ConfigError(f"exact_size_limit must be >= 0, got {self.exact_size_limit}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.parallel_threshold < 0:
            raise ConfigError(
                f"parallel_threshold must be >= 0, got {self.parallel_threshold}")
        if self.circuit_node_budget < 1:
            raise ConfigError(
                f"circuit_node_budget must be >= 1, got {self.circuit_node_budget}")
        if self.shard not in SHARD_POLICIES:
            raise ConfigError(f"shard must be one of {SHARD_POLICIES}, "
                              f"got {self.shard!r}")
        if self.index not in INDICES:
            raise ConfigError(f"index must be one of {INDICES}, "
                              f"got {self.index!r}")
        if self.index != "shapley" and self.method == "sampled":
            raise ConfigError(
                "the Monte-Carlo estimator samples Shapley permutations only; "
                f"index={self.index!r} requires an exact method")

    def to_json_dict(self) -> dict:
        """A JSON-serialisable rendering (embedded in report metadata)."""
        return asdict(self)


__all__ = ["COUNTING_METHODS", "EngineConfig", "INDICES", "METHODS",
           "ON_HARD_POLICIES", "SHARD_POLICIES"]
