"""``repro.api`` — the stable programmatic surface of the package.

One entry point replaces the ~40 free functions of the historical API:
:class:`AttributionSession` wraps the batched :class:`repro.engine.SVCEngine`
and the Figure 1b dichotomy classifier, dispatches to the admissible backend
(safe plan / lineage counting / brute force / Monte-Carlo sampling) and returns
typed, frozen, JSON-serialisable results.  The legacy free functions remain as
thin delegating shims that emit :class:`DeprecationWarning`.

Quick start::

    from repro.api import AttributionSession, EngineConfig

    session = AttributionSession(query, pdb)          # dichotomy-aware dispatch
    session.ranking()                                  # who is responsible?
    session.explanation()                              # why this backend?
    report = session.report()                          # frozen + JSON-ready
    report.to_json()
"""

from ..errors import ConfigError, IntractableQueryError, ReproError, UnsafeQueryError
from .config import EngineConfig
from .results import AttributionReport, AttributionResult, EfficiencyCheck, Explanation
from .session import AttributionSession, attribute

__all__ = [
    "AttributionReport",
    "AttributionResult",
    "AttributionSession",
    "ConfigError",
    "EfficiencyCheck",
    "EngineConfig",
    "Explanation",
    "IntractableQueryError",
    "ReproError",
    "UnsafeQueryError",
    "attribute",
]
