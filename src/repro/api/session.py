"""The attribution session: the package's stable programmatic entry point.

The paper's central message is that *which* algorithm is admissible for SVC is
decided by the query's position in the Figure 1b dichotomy.
:class:`AttributionSession` encodes that message as API: it consults
:func:`repro.analysis.dichotomy.classify_svc` once per session and routes to

* the polynomial safe-plan backend when the verdict is FP (falling back to the
  compiled-lineage circuit when the conservative plan compiler finds no plan),
* an exact exponential backend (circuit / counting / brute) when the query is
  hard or unclassified but the instance is small enough that exponential is
  fine — preferring the circuit, whose node budget caps the compilation work,
* the Monte-Carlo permutation-sampling estimator — with the ``(epsilon,
  delta)`` guarantee of :mod:`repro.core.approximate` — when the query is hard
  and the instance is large, without the caller ever naming a method.

Every decision is recorded in a structured :class:`repro.api.Explanation`, and
an explicit :attr:`EngineConfig.method` override is always honoured.  The
session is the designated seam for the ROADMAP's future backends (sharded,
async, incremental): they land behind this façade, not as new call sites.
"""

from __future__ import annotations

import math
import time
from fractions import Fraction
from typing import TYPE_CHECKING

from ..analysis.dichotomy import Complexity, DichotomyVerdict, classify_svc
from ..core.approximate import ApproximationResult, _approximate_values_of_facts
from ..data.atoms import Fact
from ..data.database import PartitionedDatabase
from ..engine.svc_engine import SVCEngine, _ranking_key, engine_cache_stats, get_engine
from ..errors import ConfigError, IntractableQueryError
from ..queries.base import BooleanQuery
from .config import EngineConfig
from .results import AttributionReport, AttributionResult, EfficiencyCheck, Explanation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workspace.store import ArtifactStore

#: Engine backends (everything the session runs that is not the sampler).
_EXACT_BACKENDS = ("safe", "circuit", "counting", "brute")


class AttributionSession:
    """Fact attribution for one ``(query, database)`` pair.

    Values are Shapley by default; ``EngineConfig(index="banzhaf")`` or
    ``index="responsibility"`` swaps the final combination step while every
    compiled artefact (plan, lineage, circuit) stays shared across indices.

    Construction is free: classification, backend resolution and the first
    value computation all happen lazily and are memoised on the session.
    Methods::

        session = AttributionSession(query, pdb, config=EngineConfig(...))
        session.values()        # {fact: Fraction} — every endogenous fact
        session.ranking()       # [(fact, value)] decreasing, deterministic ties
        session.top(3)          # the k most responsible facts
        session.max()           # max-SVC: one fact of maximum value
        session.of(fact)        # a typed per-fact AttributionResult
        session.null_players()  # facts with (estimated) value 0
        session.explanation()   # why this backend — the dispatch, auditable
        session.report()        # frozen, JSON-serialisable AttributionReport
    """

    def __init__(self, query: BooleanQuery, pdb: PartitionedDatabase,
                 config: "EngineConfig | None" = None,
                 store: "ArtifactStore | None" = None):
        if not isinstance(pdb, PartitionedDatabase):
            raise ConfigError(
                f"AttributionSession needs a PartitionedDatabase, got {type(pdb).__name__} "
                "(wrap plain databases with repro.data.purely_endogenous or partition_by_relation)")
        self.query = query
        self.pdb = pdb
        self.config = config if config is not None else EngineConfig()
        #: Optional :class:`repro.workspace.ArtifactStore`: the engine reuses
        #: stored plans / lineages / circuits and stores fresh ones, so
        #: sessions sharing a store (or a store directory, for
        #: :class:`repro.workspace.DiskStore`) share their artefacts.
        self.store = store
        self._verdict: "DichotomyVerdict | None" = None
        self._explanation: "Explanation | None" = None
        self._engine: "SVCEngine | None" = None
        self._estimates: "dict[Fact, ApproximationResult] | None" = None
        self._values: "dict[Fact, Fraction] | None" = None
        self._wall_time_s: float = 0.0

    # -- classification & dispatch ---------------------------------------------
    def classify(self) -> DichotomyVerdict:
        """The Figure 1b verdict for the session's query (memoised)."""
        if self._verdict is None:
            self._verdict = classify_svc(self.query)
        return self._verdict

    def explanation(self) -> Explanation:
        """The dispatch decision: which backend runs, and why.

        Dispatch is real work — classification, safe-plan compilation, and on
        the circuit backend the lineage build plus circuit compilation — so
        its (first, memoised) run is charged to the session's wall time like
        every other value-producing step.
        """
        if self._explanation is None:
            start = time.perf_counter()
            self._explanation = self._dispatch()
            self._wall_time_s += time.perf_counter() - start
        return self._explanation

    def backend(self) -> str:
        """The resolved backend name (``safe`` / ``counting`` / ``brute`` / ``sampled``)."""
        return self.explanation().backend

    def _engine_for(self, method: str) -> SVCEngine:
        if self._engine is None:
            self._engine = get_engine(self.query, self.pdb, method,
                                      self.config.counting_method,
                                      self.config.workers,
                                      self.config.parallel_threshold,
                                      self.config.circuit_node_budget,
                                      self.store,
                                      self.config.shard,
                                      self.config.index)
        return self._engine

    def _dispatch(self) -> Explanation:
        """Resolve the backend from the config override or the dichotomy."""
        config = self.config
        verdict = self.classify()
        if config.method != "auto":
            if config.method in _EXACT_BACKENDS:
                backend = self._engine_for(config.method).backend()
            else:
                backend = "sampled"
            return Explanation(
                backend=backend, verdict=verdict, overridden=True,
                reason=f"explicit EngineConfig.method={config.method!r} override")
        if verdict.complexity is Complexity.FP:
            # FP side: the engine's auto ladder (safe plan when the
            # conservative compiler finds one, else the compiled-lineage
            # circuit — polynomial on these instances).
            backend = self._engine_for("auto").backend()
            return Explanation(
                backend=backend, verdict=verdict, overridden=False,
                reason=f"classifier says FP ({verdict.reason}); "
                       f"exact {backend} backend admissible")
        hardness = ("#P-hard" if verdict.complexity is Complexity.SHARP_P_HARD
                    else "unclassified")
        n = len(self.pdb.endogenous)
        if n <= config.exact_size_limit:
            backend = self._engine_for("auto").backend()
            return Explanation(
                backend=backend, verdict=verdict, overridden=False,
                reason=f"query is {hardness} but |Dn| = {n} ≤ exact_size_limit = "
                       f"{config.exact_size_limit}: exponential exact {backend} backend is fine")
        if config.on_hard == "exact":
            backend = self._engine_for("auto").backend()
            return Explanation(
                backend=backend, verdict=verdict, overridden=False,
                reason=f"query is {hardness} and |Dn| = {n} > exact_size_limit, "
                       f"but on_hard='exact' keeps the exact {backend} backend")
        if config.on_hard == "raise":
            raise IntractableQueryError(
                f"query is {hardness} ({verdict.reason}) and |Dn| = {n} exceeds "
                f"exact_size_limit = {config.exact_size_limit}; "
                "set on_hard='sample' or 'exact', or raise exact_size_limit",
                verdict=verdict)
        if config.index != "shapley":
            # The Monte-Carlo fallback samples Shapley permutations only;
            # other indices have no estimator here, so refusing beats
            # silently estimating the wrong index.
            raise IntractableQueryError(
                f"query is {hardness} and |Dn| = {n} > exact_size_limit = "
                f"{config.exact_size_limit}, but the Monte-Carlo fallback "
                f"estimates Shapley values only; index={config.index!r} needs "
                "on_hard='exact' or a larger exact_size_limit",
                verdict=verdict)
        return Explanation(
            backend="sampled", verdict=verdict, overridden=False,
            reason=f"query is {hardness} and |Dn| = {n} > exact_size_limit = "
                   f"{config.exact_size_limit}: Monte-Carlo sampling with the "
                   f"(ε={config.epsilon}, δ={config.delta}) Hoeffding guarantee")

    # -- values -------------------------------------------------------------------
    def _compute_values(self) -> dict[Fact, Fraction]:
        if self._values is None:
            explanation = self.explanation()
            # Accumulate (don't overwrite): per-fact of() calls may already
            # have charged time to this session.
            start = time.perf_counter()
            if explanation.backend == "sampled":
                self._estimates = _approximate_values_of_facts(
                    self.query, self.pdb, n_samples=self.config.n_samples,
                    seed=self.config.seed, epsilon=self.config.epsilon,
                    delta=self.config.delta)
                self._values = {f: r.estimate for f, r in self._estimates.items()}
            else:
                self._values = self._engine_for("auto").all_values()
            self._wall_time_s += time.perf_counter() - start
        return self._values

    def values(self) -> dict[Fact, Fraction]:
        """The configured index's value of every endogenous fact (exact, or
        ``(ε, δ)`` estimates on the Shapley-only sampled backend)."""
        return dict(self._compute_values())

    def ranking(self) -> list[tuple[Fact, Fraction]]:
        """Facts by decreasing value; equal values follow the fact total order."""
        return sorted(self._compute_values().items(), key=_ranking_key)

    def top(self, k: int) -> list[tuple[Fact, Fraction]]:
        """The ``k`` most responsible facts (a prefix of :meth:`ranking`)."""
        if k < 0:
            raise ConfigError(f"top(k) needs k >= 0, got {k}")
        return self.ranking()[:k]

    def max(self) -> tuple[Fact, Fraction]:
        """``max-SVC``: a fact of maximum value and that value."""
        if not self.pdb.endogenous:
            raise ConfigError("the database has no endogenous fact")
        return self.ranking()[0]

    def of(self, fact: Fact) -> AttributionResult:
        """The typed attribution of one endogenous fact.

        On exact backends only this fact's value is computed (the engine still
        shares its lineage / plan across calls); the sampled backend estimates
        the whole database in one pass and reads the fact off it.
        """
        if fact not in self.pdb.endogenous:
            raise ConfigError(f"{fact} is not an endogenous fact of the database")
        if self.backend() == "sampled":
            self._compute_values()
            estimate = self._estimates[fact]
            return AttributionResult(fact=fact, value=estimate.estimate, exact=False,
                                     backend="sampled", samples=estimate.samples,
                                     epsilon=estimate.epsilon, delta=estimate.delta)
        if self._values is not None:
            value = self._values[fact]
        else:
            # Per-fact exact work is wall-time too: sessions used only through
            # of() must not report 0.0 (the engine still shares its artefacts,
            # so only the first call per fact pays real time).
            start = time.perf_counter()
            value = self._engine_for("auto").value_of(fact)
            self._wall_time_s += time.perf_counter() - start
        return AttributionResult(fact=fact, value=value, exact=True,
                                 backend=self.backend())

    def null_players(self) -> frozenset[Fact]:
        """Endogenous facts whose (estimated) value is zero.

        On exact backends this is the instance-level null-player set of
        Claim 5.1; on the sampled backend a zero estimate only certifies a
        value below the ``epsilon`` guarantee.
        """
        return frozenset(f for f, v in self._compute_values().items() if v == 0)

    # -- reporting -----------------------------------------------------------------
    def _grand_coalition_value(self) -> int:
        if self._engine is not None:
            return self._engine.grand_coalition_value()
        # Sampled backend: read v(Dn) off the same game the sampler played.
        from ..core.games import QueryGame

        return QueryGame(self.query, self.pdb).value(self.pdb.endogenous)

    def _efficiency_check(self) -> EfficiencyCheck:
        total = sum(self._compute_values().values(), Fraction(0))
        grand = self._grand_coalition_value()
        if not self._estimates:
            # Exact backends — and the sampled backend on an empty Dn, whose
            # estimate map is {} (there is no per-fact sample count to invert
            # Hoeffding for, and Σ over no facts is exactly v(Dn) = 0).
            ok = total == grand
        else:
            # Union bound over the per-fact guarantees, at the accuracy the run
            # actually had: invert Hoeffding for the sample count used (an
            # explicit n_samples override changes epsilon, not the bound).
            samples = next(iter(self._estimates.values())).samples
            effective_epsilon = math.sqrt(math.log(2.0 / self.config.delta)
                                          / (2.0 * samples))
            tolerance = Fraction(effective_epsilon).limit_denominator(10**9) \
                * len(self.pdb.endogenous)
            ok = abs(total - grand) <= tolerance
        return EfficiencyCheck(total=total, grand_coalition_value=grand, ok=ok)

    def report(self) -> AttributionReport:
        """The frozen, JSON-serialisable record of the whole attribution run."""
        ranking = tuple(self.ranking())
        # A sampled run over zero endogenous facts draws no samples, so its
        # (empty) value map is trivially exact.
        exact = not self._estimates
        samples_used = None
        if self._estimates:
            # One shared RNG, one count: every per-fact estimator uses it.
            samples_used = next(iter(self._estimates.values())).samples
        explanation = self.explanation()
        degradation: "list[str]" = []
        if self._engine is not None:
            degradation.extend(self._engine.degradation_reasons())
        if explanation.backend == "sampled" and not explanation.overridden:
            # The dispatch itself descended a rung: exact work was refused by
            # the budgets, so the run carries (ε, δ) estimates instead.
            degradation.append(f"exact→sampled: {explanation.reason}")
        return AttributionReport(
            query=str(self.query),
            ranking=ranking,
            explanation=explanation,
            config=self.config,
            n_endogenous=len(self.pdb.endogenous),
            n_exogenous=len(self.pdb.exogenous),
            lineage_size=None if self._engine is None else self._engine.lineage_size(),
            circuit_size=None if self._engine is None else self._engine.circuit_size(),
            circuit_compile_time_s=(
                None if self._engine is None else self._engine.circuit_compile_time_s()),
            wall_time_s=self._wall_time_s,
            exact=exact,
            n_samples_used=samples_used,
            workers_used=1 if self._engine is None else self._engine.workers_used,
            # The efficiency axiom (Σ values = v(Dn)) is Shapley-specific:
            # Banzhaf is not efficient and responsibility is not even additive.
            efficiency=(self._efficiency_check()
                        if self.config.check_efficiency
                        and self.config.index == "shapley" else None),
            cache=engine_cache_stats(),
            shard_axis=None if self._engine is None else self._engine.shard_axis(),
            n_components=None if self._engine is None else self._engine.n_components(),
            largest_component=(
                None if self._engine is None else self._engine.largest_component_size()),
            degradation_reason=tuple(degradation),
        )


def attribute(query: BooleanQuery, pdb: PartitionedDatabase,
              config: "EngineConfig | None" = None) -> AttributionReport:
    """One-shot convenience: run a session and return its report."""
    return AttributionSession(query, pdb, config).report()


__all__ = ["AttributionSession", "attribute"]
