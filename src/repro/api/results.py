"""Typed, frozen result objects of the attribution session.

These replace the bare ``dict`` / ``list`` / ``tuple`` returns of the legacy
free functions.  Every object is immutable, keeps Shapley values as exact
:class:`fractions.Fraction` (floats are derived, never stored), and renders to
plain JSON-serialisable dictionaries for the CLI and future service layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping

from ..analysis.dichotomy import Complexity, DichotomyVerdict
from ..data.atoms import Fact
from .config import EngineConfig


def _fraction_json(value: Fraction) -> dict:
    """Render an exact rational losslessly, with a float convenience field."""
    return {"fraction": str(value), "float": float(value)}


def _fraction_from_json(payload: dict) -> Fraction:
    """Invert :func:`_fraction_json` exactly (the float field is ignored)."""
    return Fraction(payload["fraction"])


def _fact_json(f: Fact) -> dict:
    """Render a fact with both a display string and a lossless structure.

    ``str(Fact)`` joins arguments with ``", "``, which is ambiguous for
    constants that themselves contain commas (CSV fields do); ``args`` keeps
    the exact argument list so deserialisation never has to re-parse it.
    """
    return {"fact": str(f), "relation": f.relation,
            "args": [t.name for t in f.terms]}


def _fact_from_json(entry: dict) -> Fact:
    """Rebuild a fact, preferring the lossless structure over the string."""
    from ..data.terms import Constant

    if "relation" in entry:
        return Fact(entry["relation"], tuple(Constant(a) for a in entry["args"]))
    # Documents written before the structured fields: best-effort re-parse.
    from ..io.query_text import parse_fact

    return parse_fact(entry["fact"])


@dataclass(frozen=True)
class Explanation:
    """Why the session chose its backend (the dispatch decision, made auditable).

    ``backend`` is what will run (``safe`` / ``circuit`` / ``counting`` /
    ``brute`` / ``sampled``); ``verdict`` is the Figure 1b classifier outcome the decision
    consulted; ``overridden`` records whether the caller forced the backend via
    :attr:`EngineConfig.method` instead of letting the dichotomy decide.
    """

    backend: str
    verdict: DichotomyVerdict
    overridden: bool
    reason: str

    def __str__(self) -> str:
        return f"backend={self.backend} ({self.reason}) | classifier: {self.verdict}"

    def to_json_dict(self) -> dict:
        return {
            "backend": self.backend,
            "overridden": self.overridden,
            "reason": self.reason,
            "verdict": {
                "complexity": self.verdict.complexity.value,
                "reason": self.verdict.reason,
                "query_class": self.verdict.query_class,
            },
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Explanation":
        """Rebuild an explanation from its :meth:`to_json_dict` rendering."""
        verdict = payload["verdict"]
        return cls(
            backend=payload["backend"],
            verdict=DichotomyVerdict(Complexity(verdict["complexity"]),
                                     verdict["reason"], verdict["query_class"]),
            overridden=payload["overridden"],
            reason=payload["reason"],
        )


@dataclass(frozen=True)
class AttributionResult:
    """The attribution of one fact: its (exact or estimated) Shapley value.

    ``exact`` distinguishes engine values from Monte-Carlo estimates; for the
    latter, ``samples`` / ``epsilon`` / ``delta`` record the estimator's
    parameters (``None`` on exact results).
    """

    fact: Fact
    value: Fraction
    exact: bool
    backend: str
    samples: "int | None" = None
    epsilon: "float | None" = None
    delta: "float | None" = None

    def as_float(self) -> float:
        return float(self.value)

    def to_json_dict(self) -> dict:
        payload = {"fact": str(self.fact), "value": _fraction_json(self.value),
                   "exact": self.exact, "backend": self.backend}
        if not self.exact:
            payload.update(samples=self.samples, epsilon=self.epsilon, delta=self.delta)
        return payload


@dataclass(frozen=True)
class EfficiencyCheck:
    """The efficiency-axiom check: Σ values against the grand-coalition value.

    For exact backends ``ok`` means exact equality; for the sampled backend it
    means the deviation is within the union-bounded per-fact error
    ``|Dn| · epsilon``.
    """

    total: Fraction
    grand_coalition_value: int
    ok: bool

    def to_json_dict(self) -> dict:
        return {"total": _fraction_json(self.total),
                "grand_coalition_value": self.grand_coalition_value, "ok": self.ok}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "EfficiencyCheck":
        """Rebuild a check from its :meth:`to_json_dict` rendering (exact total)."""
        return cls(total=_fraction_from_json(payload["total"]),
                   grand_coalition_value=payload["grand_coalition_value"],
                   ok=payload["ok"])


@dataclass(frozen=True)
class AttributionReport:
    """The full outcome of a whole-database attribution run.

    The ranking is stored (facts in decreasing Shapley value, ties broken by
    the library's total order on facts — see
    :func:`repro.engine.svc_engine._ranking_key`); ``values`` is a derived
    mapping view.  ``lineage_size`` is ``None`` when the chosen backend never
    built a lineage; ``cache`` holds the engine-LRU counters at report time.
    """

    query: str
    ranking: "tuple[tuple[Fact, Fraction], ...]"
    explanation: Explanation
    config: EngineConfig
    n_endogenous: int
    n_exogenous: int
    lineage_size: "int | None"
    #: Node count of the compiled lineage circuit and its compile wall time
    #: (``None`` unless the ``circuit`` backend compiled one; a compilation
    #: aborted by the node budget leaves no circuit and reports ``None``).
    circuit_size: "int | None"
    circuit_compile_time_s: "float | None"
    wall_time_s: float
    exact: bool
    #: Actual per-fact sample count of the Monte-Carlo run (``None`` on exact
    #: backends) — the Hoeffding-derived count, not the configured request.
    n_samples_used: "int | None"
    #: How many worker processes the engine actually used (``1`` for the
    #: serial path and for every parallel fallback — small instance,
    #: unpicklable artefact, pool failure — as well as the sampled backend).
    workers_used: int
    efficiency: "EfficiencyCheck | None"
    cache: Mapping[str, int]
    #: Which sharding axis the exact engine resolved to: ``"component"`` when
    #: per-fact work was recombined from variable-disjoint lineage islands,
    #: ``"fact"`` for the striped axis, ``None`` when no exact engine ran
    #: (sampled backend) or the engine predates the field.
    shard_axis: "str | None" = None
    #: Island count of the lineage decomposition and the variable count of
    #: its largest island (``None`` unless the component pre-pass ran).
    n_components: "int | None" = None
    largest_component: "int | None" = None
    #: The degradation ladder's audit trail: one human-readable entry per rung
    #: this run descended (``"circuit→counting: ..."``,
    #: ``"pool→in-process: ..."``, ``"exact→sampled: ..."``, breaker
    #: reroutes).  Empty on a run that took its first-choice path everywhere —
    #: a non-empty trail means the values are still trustworthy (exact rungs)
    #: or explicitly flagged estimates, never silently degraded.
    degradation_reason: "tuple[str, ...]" = ()

    @property
    def values(self) -> dict[Fact, Fraction]:
        """The per-fact values as a mapping (insertion order = ranking order)."""
        return dict(self.ranking)

    @property
    def backend(self) -> str:
        """The backend that produced the values (from the explanation)."""
        return self.explanation.backend

    @property
    def index(self) -> str:
        """The value index the ranking carries (from the config).

        Reports serialised before the pluggable index layer load as
        ``"shapley"`` — the only index that existed then — because
        :meth:`from_json_dict` rebuilds the config through
        :class:`~repro.api.EngineConfig`, whose ``index`` field defaults.
        """
        return self.config.index

    def __iter__(self) -> Iterator[tuple[Fact, Fraction]]:
        return iter(self.ranking)

    def to_json_dict(self) -> dict:
        return {
            "query": self.query,
            "explanation": self.explanation.to_json_dict(),
            "config": self.config.to_json_dict(),
            "n_endogenous": self.n_endogenous,
            "n_exogenous": self.n_exogenous,
            "lineage_size": self.lineage_size,
            "circuit_size": self.circuit_size,
            "circuit_compile_time_s": self.circuit_compile_time_s,
            "wall_time_s": self.wall_time_s,
            "exact": self.exact,
            "n_samples_used": self.n_samples_used,
            "workers_used": self.workers_used,
            "shard_axis": self.shard_axis,
            "n_components": self.n_components,
            "largest_component": self.largest_component,
            "degradation_reason": list(self.degradation_reason),
            "efficiency": None if self.efficiency is None else self.efficiency.to_json_dict(),
            "engine_cache": dict(self.cache),
            "ranking": [{**_fact_json(f), "value": _fraction_json(v)}
                        for f, v in self.ranking],
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        import json

        return json.dumps(self.to_json_dict(), indent=indent)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "AttributionReport":
        """Rebuild a report from its :meth:`to_json_dict` rendering.

        The round trip is exact: facts are rebuilt from the report's lossless
        ``relation``/``args`` structure (not re-parsed from display strings),
        and every Shapley value (and the efficiency total) is reconstructed
        from its lossless ``fraction`` string — so
        ``from_json_dict(r.to_json_dict())`` equals ``r`` with a bitwise-
        identical ``Fraction`` map, the contract that lets stored workspace
        reports be reloaded and diffed against fresh runs.  The query survives
        as the string the report already carried.
        """
        efficiency = payload.get("efficiency")
        return cls(
            query=payload["query"],
            ranking=tuple((_fact_from_json(entry),
                           _fraction_from_json(entry["value"]))
                          for entry in payload["ranking"]),
            explanation=Explanation.from_json_dict(payload["explanation"]),
            config=EngineConfig(**payload["config"]),
            n_endogenous=payload["n_endogenous"],
            n_exogenous=payload["n_exogenous"],
            lineage_size=payload["lineage_size"],
            circuit_size=payload["circuit_size"],
            circuit_compile_time_s=payload["circuit_compile_time_s"],
            wall_time_s=payload["wall_time_s"],
            exact=payload["exact"],
            n_samples_used=payload["n_samples_used"],
            workers_used=payload["workers_used"],
            efficiency=(None if efficiency is None
                        else EfficiencyCheck.from_json_dict(efficiency)),
            cache=dict(payload["engine_cache"]),
            # Documents written before the component shard axis: default None.
            shard_axis=payload.get("shard_axis"),
            n_components=payload.get("n_components"),
            largest_component=payload.get("largest_component"),
            # Documents written before the degradation audit trail: empty.
            degradation_reason=tuple(payload.get("degradation_reason", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "AttributionReport":
        """Rebuild a report from a :meth:`to_json` string (exact ``Fraction``s)."""
        import json

        return cls.from_json_dict(json.loads(text))


__all__ = ["AttributionReport", "AttributionResult", "EfficiencyCheck", "Explanation"]
