"""repro — Shapley value computation in databases as a matter of counting.

A from-scratch reproduction of

    Meghyn Bienvenu, Diego Figueira, Pierre Lafourcade.
    *When is Shapley Value Computation a Matter of Counting?*  PODS 2024.

The package is organised as follows:

* :mod:`repro.data` — the relational substrate (terms, facts, databases,
  partitioned databases, schemas, generators);
* :mod:`repro.queries` — Boolean query languages (CQ, UCQ, RPQ, CRPQ, UCRPQ,
  sjf-CQ¬);
* :mod:`repro.analysis` — structural analysis (hierarchy, connectivity,
  q-leaks, island supports, decomposability, safety, the SVC dichotomy
  classifier of Figure 1b);
* :mod:`repro.counting` — the model counting problems MC / GMC / FMC / FGMC and
  the size-stratified lineage counter;
* :mod:`repro.compile` — knowledge compilation: the lineage DNF compiled once
  into a smoothed, decomposable decision circuit, all per-fact conditioned
  count vectors from one top-down derivative sweep;
* :mod:`repro.probability` — tuple-independent databases, PQE and its
  restrictions, lifted inference for safe queries;
* :mod:`repro.core` — Shapley value computation (SVC, SVCn, max-SVC, Shapley
  value of constants);
* :mod:`repro.engine` — the batched SVC engine: all Shapley values of a
  database from one shared lineage / safe plan, with pluggable backends;
* :mod:`repro.api` — the stable programmatic surface: a dichotomy-aware
  :class:`AttributionSession` façade with typed results, structured
  explanations and a validated :class:`EngineConfig`;
* :mod:`repro.workspace` — incremental attribution above the session: a
  long-lived :class:`AttributionWorkspace` over a changing database, with
  lineage-support-aware delta invalidation and a pluggable
  :class:`~repro.workspace.ArtifactStore` (in-memory LRU or on-disk pickles
  keyed by content hashes) so plans, lineages and compiled circuits survive
  updates and process restarts;
* :mod:`repro.incremental` — delta maintenance under the workspace: the
  minimal support family as a materialised view advanced clause-by-clause
  per delta, and circuit patching that re-prices only the lineage islands a
  delta actually reaches, seeding recompiles from the previous circuit;
* :mod:`repro.serve` — the serving tier above workspaces: an asyncio
  :class:`~repro.serve.AttributionService` with request coalescing,
  dichotomy-driven admission control, per-tenant workspaces over one shared
  artifact store, a stdlib HTTP/JSON API (``repro serve``) and a live
  ``/stats`` metrics surface;
* :mod:`repro.reliability` — fault injection and resilience: the seeded,
  deterministic :class:`FaultPlan` / :class:`FaultInjector` harness whose
  named injection points are threaded through the store, the pools, the
  compiler and the serving executor; bounded :class:`RetryPolicy` backoff;
  the per-tenant/lane :class:`CircuitBreaker` behind the serving tier's
  degradation ladder;
* :mod:`repro.reductions` — the paper's reductions (Proposition 3.3,
  Lemmas 4.1 / 4.3 / 4.4, Section 6 variants), implemented as oracle
  algorithms over exact rational arithmetic;
* :mod:`repro.experiments` — drivers regenerating the paper's figures as
  verified tables.

Quick start — one entry point, the dichotomy picks the algorithm::

    from repro import *

    x, y = var("x"), var("y")
    q = cq(atom("R", x), atom("S", x, y), atom("T", y))      # q_RST
    db = bipartite_rst_database(3, 3, 0.5, seed=0)
    pdb = partition_by_relation(db, exogenous_relations=("R", "T"))

    session = AttributionSession(q, pdb)   # consults the Figure 1b classifier
    session.ranking()                      # facts by responsibility, exact Fractions
    session.max()                          # max-SVC: the most responsible fact
    print(session.explanation())           # which backend ran, and why
    report = session.report()              # frozen, JSON-serialisable record
    report.to_json()

Tune the dispatch with :class:`EngineConfig` (explicit backend override,
Monte-Carlo ``epsilon`` / ``delta``, policy for #P-hard queries)::

    session = AttributionSession(q, pdb, EngineConfig(epsilon=0.01, on_hard="sample"))

Backend-selection matrix — what ``method="auto"`` runs, and when to override:

==========  ===========================  =======================================
backend     auto picks it when           cost / knobs
==========  ===========================  =======================================
 safe       a safe plan compiles         polynomial; lifted inference + the
            (FP side of Figure 1b)       partition identity, one plan per query
 circuit    query is (C-)hom-closed      one lineage compilation (bounded by
            and the lineage compiles     ``EngineConfig.circuit_node_budget``,
            under the node budget        default 100 000 nodes) + one
                                         derivative sweep for *all* facts;
                                         worst-case exponential circuit size
 counting   the circuit blew its node    one lineage, ``n`` conditioned
            budget (hom-closed only)     counting passes; also explicit
                                         ``counting_method="brute"`` FGMC
 brute      query is not hom-closed      ``2^n`` coalition table; ground truth
 sampled    query is #P-hard/unknown     Monte-Carlo permutation sampling with
            and ``|Dn|`` exceeds         the ``(epsilon, delta)`` Hoeffding
            ``exact_size_limit`` (with   guarantee
            ``on_hard="sample"``)
==========  ===========================  =======================================

Every exact backend returns bitwise-identical ``Fraction`` values; the choice
only moves wall-clock time.  Reports record the evidence: ``lineage_size``,
``circuit_size``, ``circuit_compile_time_s``, ``workers_used``,
``shard_axis`` / ``n_components`` / ``largest_component``.

Index-selection matrix — every backend produces the same *conditioned
coalition-count vectors*; ``EngineConfig(index=...)`` picks the
:mod:`repro.values` combiner applied to them, so switching index reuses every
compiled artefact (plans, lineages, circuits):

===============  ==============================  ===========================
index            the question it answers         properties
===============  ==============================  ===========================
 shapley         fair division of the query's    efficient (values sum to
 (default)       truth over the endogenous       v(Dn)), symmetric, the
                 facts — order-weighted          paper's SVC; the only index
                 marginal contributions          the Monte-Carlo sampler
                                                 estimates
 banzhaf         raw swing power: in how many    not efficient (no
                 coalitions is the fact          sum identity); semivalue,
                 decisive, uniformly over        uniform coalition weights
                 subsets
 responsibility  Chockler–Halpern degree of      not additive, not a
                 responsibility 1/(1+k): how     semivalue; piecewise
                 far from decisive is the        1/(1+k) scale, good for
                 fact (k = minimal side moves)   ranked blame, coarser ties
===============  ==============================  ===========================

All three agree on *null players* (a fact has zero value under one index iff
under all — the conditioned vectors coincide), so ``null_players()`` and
support-based invalidation are index-independent.  Probability workloads
(``sppqe(..., method="circuit")``) and ``workspace.what_if`` batches evaluate
the *same* compiled circuit with a weighted bottom-up sweep — one compilation
serves attribution under every index, PQE, and what-if analysis.

Sharding-selection matrix — how ``EngineConfig.shard`` splits the work when
``workers > 1`` (and, for ``"component"``, even at one worker):

===========  ==============================  ===============================
shard        auto picks it when              what a worker holds
===========  ==============================  ===============================
 component   the lineage splits into >= 2    ONE island's sub-lineage —
             variable-disjoint islands and   compiled/counted locally, so the
             the backend is circuit or       sharded plan is *less total
             counting                        work*; per-fact vectors merge by
                                             the counter's convolution
                                             identity (faster than serial
                                             even at ``workers=1``)
 fact        one island only, or the         the WHOLE shared artefact; the
             brute / safe / sampled          per-fact loop is striped across
             backend                         the pool (PR 3 behaviour)
===========  ==============================  ===============================

On island-rich databases (many small disjoint lineage components — the
million-user shape) ``shard="component"`` measures 3.8–6.4x over serial at
one worker and beats fact striping 1.1–2.8x at four workers even on one
core (``BENCH_parallel.json``); per-island circuits are store-keyed by
``(query, sub-lineage)`` content hashes, so an in-support delta recompiles
only the touched island.

Session, workspace, or service?

===========  =============================  ==================================
layer        the workload it owns           what it adds
===========  =============================  ==================================
 session     one immutable ``(query,        dichotomy-aware dispatch, typed
             database)`` pair, one          report, structured explanation
             attribution (ad-hoc
             questions, reproducible
             reports)
 workspace   standing queries over a        delta ops on immutable snapshots,
             *changing* database, one       lineage-support invalidation
             caller                         (recompute only what a delta can
                                            reach), persistent artifact store
 service     *many concurrent callers*,     request coalescing (N identical
             many tenants, one process      concurrent requests, 1 compile),
                                            admission control (Figure 1b as a
                                            load shedder: fast / pooled /
                                            degraded / rejected lanes,
                                            deadlines that free the pool),
                                            per-tenant workspaces over one
                                            shared store, HTTP API + /stats
===========  =============================  ==================================

A session is one-shot: one immutable ``(query, database)`` pair, one
attribution — use it for ad-hoc questions and reproducible reports.  When the
*database changes* and the *queries stand*, hold an
:class:`AttributionWorkspace` instead: delta operations produce new immutable
snapshots, ``refresh()`` re-attributes only the queries a delta actually
invalidates (a delta fact outside a query's lineage support provably moves no
value), and a :class:`~repro.workspace.DiskStore` keeps the expensive
artifacts across process restarts::

    from repro.workspace import AttributionWorkspace, DiskStore

    ws = AttributionWorkspace(pdb, store=DiskStore("artifacts/"))
    ws.register("suspects", q)
    ws.refresh()                        # cold attribution, artifacts stored
    ws.insert(fact("S", "a", "b"))      # a new immutable snapshot
    result = ws.refresh()               # recomputes only what the delta reaches
    result["suspects"].rank_moves       # typed delta: what actually changed

    batch = ws.what_if(["-S(a, b)",     # hypotheticals: snapshot NOT modified
                        [">R(a)", "-S(a, b)"]])
    batch[0].probability                # Pr(q) under the scenario, exact
    batch[0].values                     # per-fact values by conditioning the
    batch.recompiled                    # standing circuit (() = no recompiles)

Incremental maintenance — when a delta *does* reach a query's support, the
workspace no longer recomputes from scratch by default.  The query's minimal
support family is kept as a delta-maintained view (:mod:`repro.incremental`):
an insert grounds only the clauses passing through the new fact, a removal
drops exactly the touched clauses, and a repartition rewrites them in place.
The refreshed lineage then re-prices **island by island** against the
artifact store — untouched islands are store hits, and the one island the
delta reached recompiles seeded from its previous circuit — so a single-fact
update costs one island, not the database (>= 5x over the cold path on the
island-rich shapes in ``BENCH_workspace.json``).  The route is audited per
query in :attr:`~repro.workspace.AttributionDelta.refresh_reason`
(``"incremental-patch"`` / ``"conservative-recompute"`` /
``"patch-fallback"`` / ``"out-of-support-reuse"``) with per-island counters
in ``patch_stats``; any surprise falls back to the cold recompute, which
doubles as the parity oracle — both paths produce bitwise-identical
``Fraction`` values (``examples/streaming_deltas.py`` walks through it)::

    ws.insert(fact("S", "c", "d"))      # reaches one island's support
    result = ws.refresh()
    result["suspects"].refresh_reason   # "incremental-patch"
    result["suspects"].patch_stats      # islands, store hits, seeded compiles
    ws.store_stats()["patched"]         # patches vs "patch_fallbacks"

When many callers hit the same process — the serving shape — wrap the
workspaces in an :class:`~repro.serve.AttributionService` (or run
``repro serve`` for the HTTP front; ``examples/serve_quickstart.py`` walks
through the whole surface)::

    from repro.serve import AttributionService

    service = AttributionService(store=DiskStore("artifacts/"))
    service.register_tenant("acme", pdb)
    served = await service.attribute("acme", q)     # coalesces duplicates
    served.report.ranking                           # exact values, provenance
    await service.refresh_tenant("acme", ["+S(a, b)"])
    service.stats()                                 # the live metrics surface

Reliability — the paper's promise is *exactness*, so the failure contract is
**no silent corruption**: every fault anywhere in the stack resolves to either
a bitwise-correct answer or a typed error, never a silently wrong ``Fraction``.
The moving parts (all in :mod:`repro.reliability`):

* **checksummed store** — :class:`~repro.workspace.DiskStore` entries are
  SHA-256-checksummed envelopes verified *before* unpickling; a corrupted or
  truncated entry is moved to ``quarantine/`` exactly once and reads as a
  plain miss (``store_stats()`` counts ``quarantined`` / ``put_failures`` /
  ``tmp_swept``); writes retry transient ``OSError`` with bounded backoff;
* **per-island retry-then-degrade** — a crashed pool worker's island is
  resubmitted to a fresh pool, and an island that keeps failing is solved
  in-process (bitwise-identical either way, audited as ``pool→in-process``);
* **circuit breakers** — repeated failures on one tenant/lane trip a
  breaker: Shapley requests reroute to the sampled lane (audited as
  ``breaker→sampled``), exactness-insisting requests get a structured 503
  with ``retry_after_s`` (a real ``Retry-After`` header over HTTP), and a
  half-open probe recovers the lane; ``GET /healthz`` rolls breaker states,
  pool saturation and store error rates into ok / degraded / unhealthy;
* **audit trail** — every rung a request descends is recorded in
  ``AttributionReport.degradation_reason``;
* **fault harness** — the same machinery is testable on a reproducible
  schedule (free when disabled — see ``BENCH_resilience.json``)::

    from repro.reliability import FaultPlan, FaultRule, injected

    plan = FaultPlan(seed=7, rules=(
        FaultRule(point="store.put.write", kind="oserror", times=2),
        FaultRule(point="parallel.worker", kind="crash", after=2, times=1)))
    with injected(plan):                   # deterministic: same plan, same faults
        session = AttributionSession(q, pdb, store=DiskStore("artifacts/"))
        session.values()                   # exact despite the injected faults

The legacy free functions (``shapley_values_of_facts``, ...) still work but
emit ``DeprecationWarning`` and delegate to the session (see the migration
table in ``CHANGES.md``).
"""

from .analysis import (
    Complexity,
    DichotomyVerdict,
    classify_svc,
    is_hierarchical,
    is_pseudo_connected,
    is_safe_ucq,
)
from .compile import (
    CircuitBudgetError,
    CompiledDNF,
    CompiledLineage,
    compile_dnf,
    compile_lineage,
)
from .api import (
    AttributionReport,
    AttributionResult,
    AttributionSession,
    EngineConfig,
    Explanation,
    attribute,
)
from .core import (
    QueryGame,
    max_shapley_value,
    shapley_value,
    shapley_value_of_constant,
    shapley_value_of_fact,
    shapley_values,
    shapley_values_of_constants,
    shapley_values_of_facts,
)
from .counting import (
    fgmc_vector,
    fixed_size_generalized_model_count,
    fixed_size_model_count,
    generalized_model_count,
    model_count,
)
from .data import (
    Atom,
    Constant,
    Database,
    Fact,
    PartitionedDatabase,
    Schema,
    Variable,
    atom,
    bipartite_rst_database,
    const,
    fact,
    partition_by_relation,
    partition_randomly,
    partitioned,
    publication_keyword_database,
    purely_endogenous,
    random_graph_database,
    var,
)
from .engine import SVCEngine, clear_engine_cache, engine_cache_stats, get_engine
from .errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
    IntractableQueryError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    UnknownTenantError,
    UnsafeQueryError,
)
from .reliability import (
    BreakerRegistry,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    call_with_retry,
    injected,
)
from .probability import (
    TupleIndependentDatabase,
    probability_of_query,
    spqe,
    sppqe,
    uniform_probability,
)
from .values import (
    BANZHAF,
    INDICES,
    RESPONSIBILITY,
    SHAPLEY,
    BanzhafIndex,
    ResponsibilityIndex,
    ShapleyIndex,
    ValueIndex,
    get_index,
)
from .queries import (
    BooleanQuery,
    ConjunctiveQuery,
    ConjunctiveQueryWithNegation,
    ConjunctiveRegularPathQuery,
    RegularPathQuery,
    UnionOfConjunctiveQueries,
    cq,
    cq_with_negation,
    crpq,
    path_atom,
    rpq,
    ucq,
)
from .reductions import (
    fgmc_via_svc_lemma_4_1,
    fgmc_via_svc_lemma_4_3,
    fgmc_via_svc_lemma_4_4,
    svc_via_fgmc,
)
from .serve import (
    AdmissionDecision,
    AdmissionPolicy,
    AttributionService,
    ServedAttribution,
)
from .workspace import (
    AttributionDelta,
    AttributionWorkspace,
    DiskStore,
    MemoryStore,
    WorkspaceRefresh,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "Atom",
    "BANZHAF",
    "BanzhafIndex",
    "INDICES",
    "RESPONSIBILITY",
    "ResponsibilityIndex",
    "SHAPLEY",
    "ShapleyIndex",
    "ValueIndex",
    "AttributionDelta",
    "AttributionReport",
    "AttributionResult",
    "AttributionService",
    "AttributionSession",
    "AttributionWorkspace",
    "BooleanQuery",
    "BreakerRegistry",
    "CircuitBreaker",
    "CircuitBudgetError",
    "CircuitOpenError",
    "Complexity",
    "CompiledDNF",
    "CompiledLineage",
    "ConfigError",
    "DeadlineExceededError",
    "EngineConfig",
    "Explanation",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "IntractableQueryError",
    "ReproError",
    "RetryPolicy",
    "ServedAttribution",
    "ServiceError",
    "ServiceOverloadError",
    "UnknownTenantError",
    "UnsafeQueryError",
    "ConjunctiveQuery",
    "ConjunctiveQueryWithNegation",
    "ConjunctiveRegularPathQuery",
    "Constant",
    "Database",
    "DichotomyVerdict",
    "DiskStore",
    "Fact",
    "MemoryStore",
    "PartitionedDatabase",
    "QueryGame",
    "RegularPathQuery",
    "SVCEngine",
    "Schema",
    "TupleIndependentDatabase",
    "UnionOfConjunctiveQueries",
    "Variable",
    "WorkspaceRefresh",
    "atom",
    "attribute",
    "bipartite_rst_database",
    "call_with_retry",
    "classify_svc",
    "clear_engine_cache",
    "compile_dnf",
    "compile_lineage",
    "const",
    "engine_cache_stats",
    "cq",
    "cq_with_negation",
    "crpq",
    "fact",
    "fgmc_vector",
    "fgmc_via_svc_lemma_4_1",
    "fgmc_via_svc_lemma_4_3",
    "fgmc_via_svc_lemma_4_4",
    "fixed_size_generalized_model_count",
    "fixed_size_model_count",
    "generalized_model_count",
    "get_engine",
    "get_index",
    "injected",
    "is_hierarchical",
    "is_pseudo_connected",
    "is_safe_ucq",
    "max_shapley_value",
    "model_count",
    "partition_by_relation",
    "partition_randomly",
    "partitioned",
    "path_atom",
    "probability_of_query",
    "publication_keyword_database",
    "purely_endogenous",
    "random_graph_database",
    "rpq",
    "shapley_value",
    "shapley_value_of_constant",
    "shapley_value_of_fact",
    "shapley_values",
    "shapley_values_of_constants",
    "shapley_values_of_facts",
    "spqe",
    "sppqe",
    "svc_via_fgmc",
    "ucq",
    "uniform_probability",
    "var",
]
