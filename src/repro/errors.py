"""The package-wide exception hierarchy.

All errors deliberately raised by the public API derive from
:class:`ReproError`, so callers of :class:`repro.api.AttributionSession` (and
of the legacy free functions that delegate to it) can catch one base class.
Where an error replaces a historical ``ValueError`` the subclass also inherits
``ValueError``, so pre-existing ``except ValueError`` call sites keep working.

The hierarchy::

    ReproError
    ├── UnsafeQueryError        no safe plan exists (lifted inference)
    ├── IntractableQueryError   exact computation refused on a hard query
    └── ConfigError             invalid configuration value
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error deliberately raised by the repro package."""


class UnsafeQueryError(ReproError):
    """Raised when lifted inference finds no safe plan for the query.

    Historically defined in :mod:`repro.probability.lifted` (which still
    re-exports it); the safe-plan compiler and the ``safe`` engine backend
    raise it when the query is not liftable.
    """


class IntractableQueryError(ReproError):
    """Raised when exact computation is refused on a #P-hard (or unclassified) query.

    Only raised on request: :class:`repro.api.EngineConfig` with
    ``on_hard="raise"`` turns the dichotomy classifier's hardness verdict into
    this error instead of silently falling back to an exponential exact backend
    or to Monte-Carlo sampling.
    """

    def __init__(self, message: str, verdict=None):
        super().__init__(message)
        #: The :class:`repro.analysis.dichotomy.DichotomyVerdict` that triggered
        #: the refusal (``None`` when raised outside the classifier).
        self.verdict = verdict


class ConfigError(ReproError, ValueError):
    """Raised on invalid configuration values (bad backend name, ε/δ out of range, ...).

    Inherits ``ValueError`` so legacy callers that caught ``ValueError`` from
    the free functions keep working.
    """


__all__ = [
    "ConfigError",
    "IntractableQueryError",
    "ReproError",
    "UnsafeQueryError",
]
