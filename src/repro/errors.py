"""The package-wide exception hierarchy.

All errors deliberately raised by the public API derive from
:class:`ReproError`, so callers of :class:`repro.api.AttributionSession` (and
of the legacy free functions that delegate to it) can catch one base class.
Where an error replaces a historical ``ValueError`` the subclass also inherits
``ValueError``, so pre-existing ``except ValueError`` call sites keep working.

The hierarchy::

    ReproError
    ├── UnsafeQueryError        no safe plan exists (lifted inference)
    ├── IntractableQueryError   exact computation refused on a hard query
    ├── ConfigError             invalid configuration value
    ├── InjectedFault           a deliberately injected, unabsorbed fault
    │                           (repro.reliability.faults; defined there)
    └── ServiceError            serving-tier failures (repro.serve)
        ├── ServiceOverloadError    admission control refused the request
        │   └── CircuitOpenError    a tripped circuit breaker refused it
        ├── DeadlineExceededError   the request's deadline elapsed
        └── UnknownTenantError      no such tenant registered
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error deliberately raised by the repro package."""


class UnsafeQueryError(ReproError):
    """Raised when lifted inference finds no safe plan for the query.

    Historically defined in :mod:`repro.probability.lifted` (which still
    re-exports it); the safe-plan compiler and the ``safe`` engine backend
    raise it when the query is not liftable.
    """


class IntractableQueryError(ReproError):
    """Raised when exact computation is refused on a #P-hard (or unclassified) query.

    Only raised on request: :class:`repro.api.EngineConfig` with
    ``on_hard="raise"`` turns the dichotomy classifier's hardness verdict into
    this error instead of silently falling back to an exponential exact backend
    or to Monte-Carlo sampling.
    """

    def __init__(self, message: str, verdict=None):
        super().__init__(message)
        #: The :class:`repro.analysis.dichotomy.DichotomyVerdict` that triggered
        #: the refusal (``None`` when raised outside the classifier).
        self.verdict = verdict


class ConfigError(ReproError, ValueError):
    """Raised on invalid configuration values (bad backend name, ε/δ out of range, ...).

    Inherits ``ValueError`` so legacy callers that caught ``ValueError`` from
    the free functions keep working.
    """


class ServiceError(ReproError):
    """Base class of the serving-tier errors raised by :mod:`repro.serve`.

    Every subclass renders to a structured JSON payload via
    :meth:`to_json_dict`, so the HTTP layer can ship the same typed error a
    programmatic caller would catch.
    """

    #: The HTTP status code the serving layer maps this error to.
    http_status = 500

    def to_json_dict(self) -> dict:
        """The structured payload the HTTP layer serialises for clients."""
        return {"error": type(self).__name__, "message": str(self)}


class ServiceOverloadError(ServiceError):
    """Raised when admission control refuses a request (the 503 of the service).

    Carries the structured evidence of the refusal: the Figure 1b ``verdict``
    that classified the query, the admission ``reason``, and an advisory
    ``retry_after_s`` (``None`` when retrying cannot help — e.g. the query is
    too hard for the service's budgets no matter the load).
    """

    http_status = 503

    def __init__(self, message: str, *, verdict=None,
                 reason: str = "overloaded",
                 retry_after_s: "float | None" = None):
        super().__init__(message)
        #: The :class:`repro.analysis.dichotomy.DichotomyVerdict` consulted by
        #: admission control (``None`` for pure capacity rejections).
        self.verdict = verdict
        #: Machine-readable refusal category (``"capacity"`` / ``"budget"``).
        self.reason = reason
        self.retry_after_s = retry_after_s

    def to_json_dict(self) -> dict:
        payload = {"error": type(self).__name__, "message": str(self),
                   "reason": self.reason, "retry_after_s": self.retry_after_s}
        if self.verdict is not None:
            payload["verdict"] = {"complexity": self.verdict.complexity.value,
                                  "reason": self.verdict.reason,
                                  "query_class": self.verdict.query_class}
        return payload


class CircuitOpenError(ServiceOverloadError):
    """Raised when a tripped circuit breaker refuses a request.

    A per-tenant/lane breaker opens after repeated failures or timeouts on
    that lane (:mod:`repro.reliability.breaker`); while open, requests that
    cannot be degraded to the sampled lane are refused with this error.
    ``retry_after_s`` is the time until the breaker half-opens — over HTTP it
    is also surfaced as a real ``Retry-After`` header.
    """

    def __init__(self, message: str, *, tenant: "str | None" = None,
                 lane: "str | None" = None,
                 retry_after_s: "float | None" = None):
        super().__init__(message, reason="circuit_open",
                         retry_after_s=retry_after_s)
        #: The failure domain the open breaker guards.
        self.tenant = tenant
        self.lane = lane

    def to_json_dict(self) -> dict:
        payload = super().to_json_dict()
        payload.update(tenant=self.tenant, lane=self.lane)
        return payload


class DeadlineExceededError(ServiceError):
    """Raised when a request's deadline elapses before its attribution completes.

    A request that was still *queued* (waiting for a pool slot) when its
    deadline passed never occupies a worker at all — the deadline frees the
    pool rather than merely abandoning the response.
    """

    http_status = 504

    def __init__(self, message: str, *, deadline_s: "float | None" = None):
        super().__init__(message)
        #: The deadline the request carried, in seconds.
        self.deadline_s = deadline_s

    def to_json_dict(self) -> dict:
        return {"error": type(self).__name__, "message": str(self),
                "deadline_s": self.deadline_s}


class UnknownTenantError(ServiceError, KeyError):
    """Raised when a request names a tenant the service has not registered.

    Inherits ``KeyError`` because the tenant registry is mapping-shaped and
    callers may already guard lookups that way.
    """

    http_status = 404

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message plain
        return self.args[0] if self.args else ""


__all__ = [
    "CircuitOpenError",
    "ConfigError",
    "DeadlineExceededError",
    "IntractableQueryError",
    "ReproError",
    "ServiceError",
    "ServiceOverloadError",
    "UnknownTenantError",
    "UnsafeQueryError",
]
