"""Experiment — batched SVC engine vs. the per-fact loop.

The whole-database workload ("Shapley values of *all* endogenous facts") is the
one the attribution literature actually serves: ranking facts, finding null
players, explaining a query answer.  The per-fact reduction of Proposition 3.3
rebuilds the lineage DNF twice per fact; the batched
:class:`repro.engine.SVCEngine` builds it once and derives every per-fact FGMC
vector pair by conditioning.  This driver measures both on the same instances
and verifies that the values agree exactly.
"""

from __future__ import annotations

import time
from fractions import Fraction

from ..core.svc import shapley_value_via_fgmc
from ..counting.dnf_counter import clear_caches
from ..data.atoms import fact
from ..data.database import PartitionedDatabase
from ..data.generators import bipartite_rst_database, complete_bipartite_s_facts
from ..engine import SVCEngine
from ..queries.base import BooleanQuery
from .catalog import q_rst


def bipartite_attribution_instance(left: int, right: int,
                                   exogenous_pad: int = 0) -> PartitionedDatabase:
    """A complete bipartite R/S/T instance with ``left * right`` endogenous S facts.

    R and T facts are exogenous; the S facts are the players — the standard
    hard-side instance family of the paper's experiments.  ``exogenous_pad``
    adds that many extra exogenous ``R`` / ``S`` facts leading to dead-end
    constants (no matching ``T``), modelling the realistic attribution workload
    where a few suspect facts sit inside a large trusted database: the pad
    contributes no minimal support, but every lineage build must search it.
    """
    s_facts = complete_bipartite_s_facts(left, right)
    r_facts = {fact("R", f"l{i}") for i in range(left)}
    t_facts = {fact("T", f"r{j}") for j in range(right)}
    pad = set()
    for k in range(exogenous_pad):
        pad.add(fact("R", f"p{k}"))
        pad.add(fact("S", f"p{k}", f"dead{k}"))
    return PartitionedDatabase(s_facts, r_facts | t_facts | pad)


def island_attribution_instance(n_islands: int, left: int = 2, right: int = 2,
                                exogenous_pad: int = 0) -> PartitionedDatabase:
    """Many variable-disjoint ``q_RST`` islands in one database, all facts endogenous.

    Island ``k`` is a complete bipartite R/S/T block over its own constants
    (``i<k>l*`` / ``i<k>r*``), so its lineage clauses ``{r_i, s_ij, t_j}``
    share no fact with any other island: the lineage splits into exactly
    ``n_islands`` components of ``left + right + left * right`` variables
    each.  This is the million-user corpus shape in miniature — one database,
    many small independent stories — and the family where sharding by
    component pays while per-fact striping does not.  ``exogenous_pad`` adds
    dead-end exogenous facts outside every support, as in
    :func:`bipartite_attribution_instance`.
    """
    endogenous = set()
    for k in range(n_islands):
        for i in range(left):
            endogenous.add(fact("R", f"i{k}l{i}"))
            for j in range(right):
                endogenous.add(fact("S", f"i{k}l{i}", f"i{k}r{j}"))
        for j in range(right):
            endogenous.add(fact("T", f"i{k}r{j}"))
    pad = set()
    for k in range(exogenous_pad):
        pad.add(fact("R", f"p{k}"))
        pad.add(fact("S", f"p{k}", f"dead{k}"))
    return PartitionedDatabase(endogenous, pad)


def sparse_endogenous_instance(n_left: int, n_right: int,
                               edge_probability: float = 0.3,
                               seed: int = 5) -> PartitionedDatabase:
    """A sparse bipartite R/S/T instance with **every** fact endogenous.

    The hard-but-structured family of the circuit benchmarks: with R and T
    facts endogenous too, the ``q_RST`` lineage has three-variable clauses
    ``{r_i, s_ij, t_j}`` sharing variables along rows and columns — large
    enough conditioned sub-formulas to make the per-fact counting passes
    genuinely expensive, yet sparse enough that Shannon expansion with
    component caching compiles to a small circuit.
    """
    return PartitionedDatabase(
        bipartite_rst_database(n_left, n_right, edge_probability, seed=seed).facts, ())


def per_fact_loop(query: BooleanQuery, pdb: PartitionedDatabase) -> dict:
    """The pre-engine behaviour: one full Prop. 3.3 reduction per fact.

    Every fact pays two fresh lineage builds (``shapley_value_via_fgmc`` on the
    two derived databases); this is the baseline the engine is measured against.
    """
    return {f: shapley_value_via_fgmc(query, pdb, f, counting_method="lineage")
            for f in sorted(pdb.endogenous)}


def run_batch_vs_loop(shapes: "tuple[tuple[int, int], ...]" = ((2, 3), (2, 5), (2, 7)),
                      query: "BooleanQuery | None" = None) -> list[dict]:
    """Time the batched engine against the per-fact loop on growing instances.

    Returns one row per instance shape with the endogenous count, both wall
    times, the speedup, and whether the two value dictionaries agree exactly.
    The counter's memoisation caches are cleared before each timed run so
    neither side benefits from the other's work.
    """
    query = query or q_rst()
    rows: list[dict] = []
    for left, right in shapes:
        pdb = bipartite_attribution_instance(left, right)

        clear_caches()
        start = time.perf_counter()
        loop_values = per_fact_loop(query, pdb)
        loop_time = time.perf_counter() - start

        clear_caches()
        start = time.perf_counter()
        batch_values = SVCEngine(query, pdb, method="counting").all_values()
        batch_time = time.perf_counter() - start

        rows.append({
            "|Dn|": len(pdb.endogenous),
            "per-fact loop (s)": f"{loop_time:.4f}",
            "batched engine (s)": f"{batch_time:.4f}",
            "speedup": f"{loop_time / batch_time:.1f}x" if batch_time else "inf",
            "exact match": loop_values == batch_values,
            "Σ values": str(sum(batch_values.values(), Fraction(0))),
        })
    return rows


def run_circuit_vs_counting(shapes: "tuple[tuple[int, int], ...]" = ((7, 7), (9, 9), (10, 10)),
                            edge_probability: float = 0.3,
                            seed: int = 5,
                            query: "BooleanQuery | None" = None,
                            circuit_node_budget: "int | None" = None) -> list[dict]:
    """Time the compiled-circuit backend against per-fact lineage conditioning.

    Both engines share the same lineage build and Claim A.1 combination step;
    the difference under measurement is ``n`` conditioned counting passes
    (``counting``) versus one compilation plus one top-down derivative sweep
    (``circuit``).  Each row reports both wall times, the circuit size and
    compile time, the speedup, and whether the value dictionaries are
    bitwise-identical.  Caches are cleared before each timed run so neither
    side inherits the other's memoisation.  ``circuit_node_budget`` overrides
    the engine default; an instance that blows it shows up as a
    ``backend="counting"`` row (the graceful-fallback path), not an error.
    """
    query = query or q_rst()
    budget_kwargs = ({} if circuit_node_budget is None
                     else {"circuit_node_budget": circuit_node_budget})
    rows: list[dict] = []
    for left, right in shapes:
        pdb = sparse_endogenous_instance(left, right, edge_probability, seed)

        clear_caches()
        start = time.perf_counter()
        counting_values = SVCEngine(query, pdb, method="counting").all_values()
        counting_time = time.perf_counter() - start

        clear_caches()
        engine = SVCEngine(query, pdb, method="circuit", **budget_kwargs)
        start = time.perf_counter()
        circuit_values = engine.all_values()
        circuit_time = time.perf_counter() - start

        compile_time = engine.circuit_compile_time_s()
        rows.append({
            "|Dn|": len(pdb.endogenous),
            "lineage clauses": engine.lineage_size(),
            "backend": engine.backend(),  # "counting" after a budget fallback
            "circuit nodes": engine.circuit_size(),
            "compile (s)": "—" if compile_time is None else f"{compile_time:.4f}",
            "counting engine (s)": f"{counting_time:.4f}",
            "circuit engine (s)": f"{circuit_time:.4f}",
            "speedup": f"{counting_time / circuit_time:.1f}x" if circuit_time else "inf",
            "exact match": counting_values == circuit_values,
            "Σ values": str(sum(circuit_values.values(), Fraction(0))),
        })
    return rows


def run_parallel_vs_serial(shapes: "tuple[tuple[int, int], ...]" = ((2, 5), (2, 7), (3, 5)),
                           workers: int = 4,
                           query: "BooleanQuery | None" = None,
                           method: str = "counting",
                           exogenous_pad: int = 20) -> list[dict]:
    """Time the process-parallel engine against the serial engine.

    Each row reports both wall times, the speedup, how many workers the
    parallel engine actually used (``1`` whenever it fell back to the serial
    path), and whether the two value dictionaries are bitwise-identical — the
    parity contract of the parallel backend.  Caches are cleared before each
    timed run so neither side inherits the other's memoisation; note that a
    genuine speedup additionally needs as many free CPU cores as workers.
    """
    query = query or q_rst()
    rows: list[dict] = []
    for left, right in shapes:
        pdb = bipartite_attribution_instance(left, right, exogenous_pad=exogenous_pad)

        clear_caches()
        start = time.perf_counter()
        serial_values = SVCEngine(query, pdb, method=method).all_values()
        serial_time = time.perf_counter() - start

        clear_caches()
        engine = SVCEngine(query, pdb, method=method,
                           workers=workers, parallel_threshold=2)
        start = time.perf_counter()
        parallel_values = engine.all_values()
        parallel_time = time.perf_counter() - start

        rows.append({
            "|Dn|": len(pdb.endogenous),
            "serial engine (s)": f"{serial_time:.4f}",
            f"parallel engine x{workers} (s)": f"{parallel_time:.4f}",
            "speedup": f"{serial_time / parallel_time:.2f}x" if parallel_time else "inf",
            "workers used": engine.workers_used,
            "exact match": serial_values == parallel_values,
            "Σ values": str(sum(parallel_values.values(), Fraction(0))),
        })
    return rows
