"""Experiment — incremental workspace refresh vs. cold re-attribution.

The production attribution workload is a standing query over a database that
changes one fact at a time.  The one-shot :class:`repro.api.AttributionSession`
answers each state from scratch — full lineage build, full circuit
compilation, full sweep — while :class:`repro.workspace.AttributionWorkspace`
screens each delta against the query's lineage support and recomputes only
when the delta can actually move a value, reusing stored artifacts when it
must recompute.  This driver measures both on the same update sequences and
verifies the workspace's parity contract (bitwise-identical ``Fraction``
values to a cold session on the final snapshot) on every row.
"""

from __future__ import annotations

import time
from fractions import Fraction

from ..api.config import EngineConfig
from ..api.session import AttributionSession
from ..counting.dnf_counter import clear_caches
from ..data.atoms import fact
from ..engine.svc_engine import clear_engine_cache
from ..queries.base import BooleanQuery
from ..workspace import AttributionWorkspace, MemoryStore
from .batch_engine import sparse_endogenous_instance
from .catalog import q_rst


def run_incremental_vs_cold(shapes: "tuple[tuple[int, int], ...]" = ((6, 6), (8, 8), (10, 10)),
                            edge_probability: float = 0.3,
                            seed: int = 5,
                            query: "BooleanQuery | None" = None) -> list[dict]:
    """Time warm workspace refreshes against cold sessions on growing instances.

    Per instance: one cold attribution (the workspace's initial refresh, which
    is exactly a cold session plus the support computation), then two
    single-fact deltas — one *outside* the query's lineage support (an
    unrelated relation: the refresh reuses every cached value) and one
    *inside* it (an endogenous support fact removed: the refresh recomputes,
    but through the artifact store).  Both warm refreshes are checked for
    bitwise equality against a cold session on the same snapshot.  Caches are
    cleared before each timed cold run so the comparison is honest.
    """
    query = query or q_rst()
    rows: list[dict] = []
    for left, right in shapes:
        pdb = sparse_endogenous_instance(left, right, edge_probability, seed)

        clear_caches()
        clear_engine_cache()
        ws = AttributionWorkspace(pdb, store=MemoryStore())
        ws.register("q", query)
        start = time.perf_counter()
        ws.refresh()
        cold_time = time.perf_counter() - start

        # Delta 1: a fact the query can never see (outside the support).
        ws.insert(fact("Audit", f"probe{left}"))
        start = time.perf_counter()
        reuse_refresh = ws.refresh()
        reuse_time = time.perf_counter() - start

        clear_caches()
        clear_engine_cache()
        cold_values = AttributionSession(
            query, ws.pdb, EngineConfig(on_hard="exact")).values()
        reuse_match = ws.values("q") == cold_values

        # Delta 2: remove an endogenous support fact (forces a recompute).
        victim = min(f for f in ws.pdb.endogenous if f.relation == "S")
        ws.remove(victim)
        start = time.perf_counter()
        recompute_refresh = ws.refresh()
        recompute_time = time.perf_counter() - start

        clear_caches()
        clear_engine_cache()
        cold_values = AttributionSession(
            query, ws.pdb, EngineConfig(on_hard="exact")).values()
        recompute_match = ws.values("q") == cold_values

        rows.append({
            "|Dn|": len(pdb.endogenous),
            "cold attribution (s)": f"{cold_time:.4f}",
            "warm refresh, reused (s)": f"{reuse_time:.4f}",
            "reuse speedup": (f"{cold_time / reuse_time:.0f}x"
                              if reuse_time else "inf"),
            "warm refresh, recomputed (s)": f"{recompute_time:.4f}",
            "reused?": not reuse_refresh["q"].recomputed,
            "recomputed?": recompute_refresh["q"].recomputed,
            "exact match": reuse_match and recompute_match,
            "Σ values": str(sum(ws.values("q").values(), Fraction(0))),
        })
    return rows
