"""Experiment E3 — Figure 2: the A_i construction, measured.

The island-support reduction is run on databases of growing size; each row
reports the number of endogenous facts, the number of SVC oracle calls the
reduction makes (``n + 1``), the size of the largest constructed database
``A_n`` and whether the recovered FGMC vector matches a direct computation.
"""

from __future__ import annotations

from ..counting.problems import fgmc_vector
from ..data.generators import bipartite_rst_database, partition_by_relation
from ..reductions.island import IslandReductionReport, fgmc_via_svc_lemma_4_1
from ..reductions.oracles import CallCounter, exact_svc_oracle
from .catalog import q_rst


def run_figure2(sizes: "tuple[int, ...]" = (2, 3, 4, 5, 6), verify_with_brute: bool = True
                ) -> list[dict]:
    """Run the Lemma 4.1 construction on growing bipartite instances; return table rows."""
    query = q_rst()
    rows: list[dict] = []
    for n_edges in sizes:
        db = bipartite_rst_database(n_edges, n_edges, 2.0 / n_edges, seed=n_edges)
        pdb = partition_by_relation(db, exogenous_relations=("R", "T"))
        if len(pdb.endogenous) > 8 and verify_with_brute:
            continue
        oracle = CallCounter(exact_svc_oracle(method="counting"))
        report = IslandReductionReport()
        vector = fgmc_via_svc_lemma_4_1(query, pdb, oracle, report=report)
        row = {
            "endogenous facts": len(pdb.endogenous),
            "exogenous facts": len(pdb.exogenous),
            "oracle calls": oracle.calls,
            "largest A_i": max(report.construction_sizes) if report.construction_sizes else 0,
            "total supports": sum(vector),
        }
        if verify_with_brute:
            row["verified"] = vector == fgmc_vector(query, pdb, method="brute")
        rows.append(row)
    return rows
