"""Experiments E4/E5 — the FP vs #P-hard dichotomies as runtime scaling curves.

The paper's dichotomies are statements about worst-case data complexity; the
executable counterpart is the scaling behaviour of the implemented algorithms:

* on the FP side (hierarchical sjf-CQs, short RPQs), the safe pipeline computes
  Shapley values in polynomial time — the measured cost grows smoothly with the
  instance size;
* on the hard side (``q_RST``, RPQs with a word of length ≥ 3), the library has
  to fall back to lineage-based model counting, whose cost explodes on the
  worst-case instances (complete bipartite lineages), while brute force is
  exponential everywhere.

These drivers produce the series used by the corresponding benchmark tables.
"""

from __future__ import annotations

import time
from fractions import Fraction

from ..analysis.dichotomy import classify_svc
from ..engine.svc_engine import SVCEngine
from ..data.database import Database, PartitionedDatabase
from ..data.atoms import fact
from ..data.terms import Constant
from ..data.generators import bipartite_rst_database, complete_bipartite_s_facts, partition_by_relation
from ..queries.rpq import RegularPathQuery
from .catalog import q_hierarchical, q_rst, rpq_length_three, rpq_length_two


def _timed(function, *args, **kwargs) -> tuple[object, float]:
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def cold_shapley_value(query, pdb, target, method):
    """One per-fact Shapley value on a fresh engine (no LRU reuse).

    The shared cold-timing helper of the scaling experiments and the
    ``bench_*_dichotomy`` / ``bench_negation`` benchmark files: a new
    :class:`repro.engine.SVCEngine` per call, so repeated timed runs never
    inherit another run's lineage, plan or memoised values.
    """
    return SVCEngine(query, pdb, method=method).value_of(target)


def run_sjfcq_scaling(sizes: "tuple[int, ...]" = (2, 3, 4, 5),
                      include_brute: bool = True) -> list[dict]:
    """E5: SVC runtime on hierarchical vs non-hierarchical sjf-CQs over bipartite instances.

    The instances are complete bipartite R/S/T databases with R and T exogenous;
    the S facts are the players.  The hierarchical query is solved with the
    polynomial safe pipeline, the non-hierarchical one with lineage-based
    counting (and optionally brute force for small sizes).
    """
    hierarchical = q_hierarchical()
    hard = q_rst()
    rows: list[dict] = []
    for size in sizes:
        s_facts = complete_bipartite_s_facts(size, size)
        r_facts = {fact("R", f"l{i}") for i in range(size)}
        t_facts = {fact("T", f"r{j}") for j in range(size)}
        pdb = PartitionedDatabase(s_facts, r_facts | t_facts)
        target = sorted(pdb.endogenous)[0]

        _, safe_time = _timed(cold_shapley_value, hierarchical, pdb, target, "safe")
        _, counting_time = _timed(cold_shapley_value, hard, pdb, target, "counting")
        row = {
            "|Dn| (S facts)": len(pdb.endogenous),
            "hierarchical, safe pipeline (s)": round(safe_time, 4),
            "q_RST, lineage counting (s)": round(counting_time, 4),
            "hierarchical verdict": classify_svc(hierarchical).complexity.value,
            "q_RST verdict": classify_svc(hard).complexity.value,
        }
        if include_brute and len(pdb.endogenous) <= 9:
            _, brute_time = _timed(cold_shapley_value, hard, pdb, target, "brute")
            row["q_RST, brute force (s)"] = round(brute_time, 4)
        rows.append(row)
    return rows


def _rpq_instance(query: RegularPathQuery, n_middle: int) -> PartitionedDatabase:
    """A layered instance for an RPQ ``[A B ...](a, b)`` with ``n_middle`` parallel middles."""
    facts = set()
    relations = sorted(query.relation_names())
    word = query.shortest_word_of_length_at_least(1) or tuple(relations[:1])
    for k in range(n_middle):
        previous = query.source
        for index, label in enumerate(word):
            nxt = query.target if index == len(word) - 1 else Constant(f"m{k}_{index}")
            facts.add(fact(label, previous.name, nxt.name))
            previous = nxt
    db = Database(facts)
    return PartitionedDatabase(db.facts, ())


def run_rpq_dichotomy(n_middles: "tuple[int, ...]" = (1, 2, 3),
                      include_brute: bool = True) -> list[dict]:
    """E4: Corollary 4.3 — RPQs with longest word 2 vs 3 on layered path instances."""
    easy = rpq_length_two()
    hard = rpq_length_three()
    rows: list[dict] = []
    for n_middle in n_middles:
        easy_pdb = _rpq_instance(easy, n_middle)
        hard_pdb = _rpq_instance(hard, n_middle)
        easy_fact = sorted(easy_pdb.endogenous)[0]
        hard_fact = sorted(hard_pdb.endogenous)[0]
        _, easy_time = _timed(cold_shapley_value, easy, easy_pdb, easy_fact, "counting")
        _, hard_time = _timed(cold_shapley_value, hard, hard_pdb, hard_fact, "counting")
        row = {
            "parallel paths": n_middle,
            "|Dn| (easy/hard)": f"{len(easy_pdb.endogenous)}/{len(hard_pdb.endogenous)}",
            "[A B](a,b) counting (s)": round(easy_time, 4),
            "[A B C](a,b) counting (s)": round(hard_time, 4),
            "easy verdict": classify_svc(easy).complexity.value,
            "hard verdict": classify_svc(hard).complexity.value,
        }
        if include_brute and len(hard_pdb.endogenous) <= 9:
            _, brute_time = _timed(cold_shapley_value, hard, hard_pdb, hard_fact, "brute")
            row["[A B C](a,b) brute (s)"] = round(brute_time, 4)
        rows.append(row)
    return rows


def run_shapley_ranking_example(size: int = 3) -> list[dict]:
    """A small fact-attribution table for ``q_RST`` (used by the quickstart example)."""
    db = bipartite_rst_database(size, size, 0.6, seed=7)
    pdb = partition_by_relation(db, exogenous_relations=("R", "T"))
    from ..api import AttributionSession, EngineConfig

    session = AttributionSession(q_rst(), pdb, EngineConfig(method="counting"))
    return [{"fact": str(f), "shapley value": str(value), "float": float(Fraction(value))}
            for f, value in session.ranking()]
