"""Experiments E7–E11 — the Section 6 variants and the counting-engine ablation.

* E7: purely endogenous databases (Lemma 6.1, Lemma 6.2, Corollary 6.1),
* E8: the max-SVC oracle (Proposition 6.2),
* E9: Shapley values of constants (Section 6.4, Proposition 6.3),
* E10: queries with negation (Proposition 6.1, Examples D.1/D.2),
* E11: lineage-based counting vs brute-force counting (design-choice ablation).
"""

from __future__ import annotations

import time
from fractions import Fraction

from ..core.constants import fgmc_constants_vector, shapley_values_of_constants
from ..core.endogenous import shapley_value_endogenous, shapley_value_endogenous_via_fmc
from ..core.max_svc import max_shapley_value_with_shortcut
from ..counting.problems import fgmc_vector, fmc_vector
from ..data.atoms import atom, fact
from ..data.database import Database, purely_endogenous
from ..data.generators import (
    bipartite_rst_database,
    partition_by_relation,
    partition_randomly,
    publication_keyword_database,
)
from ..data.terms import var
from ..queries.cq import cq
from ..reductions.constants import exact_svc_const_oracle, fgmc_constants_via_svc_constants
from ..reductions.endogenous import count_fmc_oracle_calls, fgmc_via_fmc
from ..reductions.island import fgmc_via_max_svc, fmc_via_svcn_lemma_6_2
from ..reductions.negation import fgmc_via_svc_proposition_6_1, is_component_guarded
from ..reductions.oracles import CallCounter, exact_max_svc_oracle, exact_svc_oracle
from .catalog import q_hierarchical, q_negation_hard, q_rst, q_star_publication


def run_endogenous_variant(seeds: "tuple[int, ...]" = (1, 2, 3)) -> list[dict]:
    """E7: SVCn and FMC — Lemma 6.1 call counts, Lemma 6.2 and Corollary 6.1 verification."""
    rows: list[dict] = []
    query = q_rst()
    ns_query = q_hierarchical()
    for seed in seeds:
        db = bipartite_rst_database(2, 2, 0.7, seed=seed)
        pdb = partition_randomly(db, 0.4, seed=seed + 20)
        pe = purely_endogenous(db)
        target = sorted(pe.endogenous)[0]

        direct = fgmc_vector(query, pdb, method="brute")
        counter = CallCounter(lambda q, d: fmc_vector(q, d, method="lineage"))
        via_fmc = fgmc_via_fmc(query, pdb, counter)

        svcn_direct = shapley_value_endogenous(query, pe, target, method="brute")
        svcn_via = shapley_value_endogenous_via_fmc(query, pe, target)

        lemma62_counter = CallCounter(exact_svc_oracle("counting"))
        lemma62 = fmc_via_svcn_lemma_6_2(ns_query, pe, lemma62_counter)
        lemma62_direct = fmc_vector(ns_query, pe, method="brute")

        rows.append({
            "seed": seed,
            "|Dx|": len(pdb.exogenous),
            "Lemma 6.1 FMC calls": counter.calls,
            "Lemma 6.1 bound 2^k": count_fmc_oracle_calls(len(pdb.exogenous)),
            "Lemma 6.1 verified": via_fmc == direct,
            "Corollary 6.1 verified": svcn_direct == svcn_via,
            "Lemma 6.2 SVCn calls": lemma62_counter.calls,
            "Lemma 6.2 verified": lemma62 == lemma62_direct,
        })
    return rows


def run_max_svc_variant(seeds: "tuple[int, ...]" = (1, 2, 3)) -> list[dict]:
    """E8: Proposition 6.2 — FGMC recovered from a max-SVC oracle."""
    from ..api import AttributionSession, EngineConfig

    rows: list[dict] = []
    query = q_rst()
    for seed in seeds:
        db = bipartite_rst_database(2, 2, 0.7, seed=seed)
        pdb = partition_randomly(db, 0.3, seed=seed + 5)
        direct = fgmc_vector(query, pdb, method="brute")
        counter = CallCounter(exact_max_svc_oracle("counting"))
        via_max = fgmc_via_max_svc(query, pdb, counter)
        session = AttributionSession(query, pdb, EngineConfig(method="counting"))
        best_fact, best_value = session.max()
        shortcut_fact, shortcut_value = max_shapley_value_with_shortcut(query, pdb,
                                                                        method="counting")
        rows.append({
            "seed": seed,
            "|Dn|": len(pdb.endogenous),
            "max-SVC oracle calls": counter.calls,
            "Prop 6.2 verified": via_max == direct,
            "max value": str(best_value),
            "shortcut agrees": best_value == shortcut_value,
        })
        del best_fact, shortcut_fact
    return rows


def run_constants_variant(n_authors: int = 3, n_papers: int = 4,
                          seeds: "tuple[int, ...]" = (1, 2)) -> list[dict]:
    """E9: Section 6.4 — author expertise via Shapley values of constants, and Proposition 6.3."""
    rows: list[dict] = []
    query = q_star_publication()
    for seed in seeds:
        db = publication_keyword_database(n_authors, n_papers, seed=seed)
        authors = sorted(c for c in db.constants() if c.name.startswith("author"))
        values = shapley_values_of_constants(query, db, authors, method="counting")
        brute_values = shapley_values_of_constants(query, db, authors, method="brute")
        direct_counts = fgmc_constants_vector(query, db, authors)
        via_oracle = fgmc_constants_via_svc_constants(query, db, authors, None,
                                                      exact_svc_const_oracle("brute"))
        top_author = max(values, key=lambda c: (values[c], c.name))
        rows.append({
            "seed": seed,
            "#authors": len(authors),
            "top author": top_author.name,
            "top value": str(values[top_author]),
            "counting == brute": values == brute_values,
            "Prop 6.3 verified": via_oracle == direct_counts,
            "efficiency sum": str(sum(values.values(), Fraction(0))),
        })
    return rows


def run_negation_variant(seeds: "tuple[int, ...]" = (1, 2)) -> list[dict]:
    """E10: Proposition 6.1 — FGMC of the variable-connected core from an SVC oracle for sjf-CQ¬."""
    rows: list[dict] = []
    query = q_negation_hard()
    for seed in seeds:
        base = bipartite_rst_database(2, 2, 0.7, seed=seed)
        with_negated = Database(list(base.facts) + [fact("N", "l0", "r0")])
        pdb = partition_randomly(with_negated, 0.3, seed=seed + 40)
        counter = CallCounter(exact_svc_oracle("brute"))
        target, via_oracle = fgmc_via_svc_proposition_6_1(query, pdb, counter)
        direct = fgmc_vector(target, pdb, method="brute")
        rows.append({
            "seed": seed,
            "|Dn|": len(pdb.endogenous),
            "component-guarded": is_component_guarded(query),
            "oracle calls": counter.calls,
            "Prop 6.1 verified": via_oracle == direct,
            "counted query": str(target),
        })
    return rows


def run_counting_ablation(sizes: "tuple[int, ...]" = (2, 3, 4)) -> list[dict]:
    """E11: lineage-based size-stratified counting vs subset enumeration (ablation)."""
    rows: list[dict] = []
    x, y = var("x"), var("y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    for size in sizes:
        db = bipartite_rst_database(size, size, 0.8, seed=size)
        pdb = partition_by_relation(db, exogenous_relations=("R", "T"))
        start = time.perf_counter()
        lineage_counts = fgmc_vector(query, pdb, method="lineage")
        lineage_time = time.perf_counter() - start
        row = {
            "|Dn|": len(pdb.endogenous),
            "lineage (s)": round(lineage_time, 4),
        }
        if len(pdb.endogenous) <= 14:
            start = time.perf_counter()
            brute_counts = fgmc_vector(query, pdb, method="brute")
            brute_time = time.perf_counter() - start
            row["brute (s)"] = round(brute_time, 4)
            row["agree"] = lineage_counts == brute_counts
        rows.append(row)
    return rows
