"""Experiment E2 — Figure 1b: the dichotomy map.

The classifier of :mod:`repro.analysis.dichotomy` is run on every catalog
query; each row reports the query class, the verdict, the justification and
whether it agrees with the complexity the paper assigns to that query.
"""

from __future__ import annotations

from ..analysis.dichotomy import classify_svc
from .catalog import full_catalog


def run_figure1b() -> list[dict]:
    """Classify every catalog query; return table rows."""
    rows: list[dict] = []
    for entry in full_catalog():
        verdict = classify_svc(entry.query)
        expected = entry.expected.value if entry.expected is not None else "-"
        rows.append({
            "query": entry.name,
            "class": verdict.query_class,
            "verdict": verdict.complexity.value,
            "expected": expected,
            "agrees": (entry.expected is None) or (verdict.complexity == entry.expected),
            "justification": verdict.reason,
        })
    return rows
