"""Experiment E1 — Figure 1a: the reduction diagram, executed and verified.

For a small suite of (query, partitioned database) instances, every reduction
arrow implemented in :mod:`repro.reductions` is executed through its oracle and
the result is cross-checked against a direct (brute-force or lineage-based)
computation of the source problem.  The output is one row per arrow per
instance, reporting whether the reduction reproduced the exact value and how
many oracle calls it made.
"""

from __future__ import annotations

from fractions import Fraction

from ..engine.svc_engine import get_engine
from ..counting.problems import fgmc_vector, fmc_vector
from ..data.database import PartitionedDatabase, purely_endogenous
from ..data.generators import bipartite_rst_database, partition_randomly
from ..probability.pqe import probability_of_query
from ..probability.tid import TupleIndependentDatabase
from ..queries.cq import ConjunctiveQuery
from ..reductions.endogenous import fgmc_via_fmc, svcn_via_fmc
from ..reductions.island import fgmc_via_max_svc, fgmc_via_svc_lemma_4_1
from ..reductions.oracles import CallCounter, exact_fgmc_oracle, exact_max_svc_oracle, exact_svc_oracle
from ..reductions.prop33 import (
    exact_sppqe_oracle,
    fgmc_via_sppqe,
    sppqe_via_fgmc,
    svc_via_fgmc,
)
from .catalog import q_hierarchical, q_rst


def _instances(max_endogenous: int = 6) -> list[tuple[str, ConjunctiveQuery, PartitionedDatabase]]:
    out: list[tuple[str, ConjunctiveQuery, PartitionedDatabase]] = []
    for name, query in (("q_RST", q_rst()), ("q_hier", q_hierarchical())):
        for seed in (1, 2):
            db = bipartite_rst_database(2, 2, 0.7, seed=seed)
            pdb = partition_randomly(db, 0.35, seed=seed + 10)
            if len(pdb.endogenous) <= max_endogenous:
                out.append((f"{name}/bipartite(2,2,seed={seed})", query, pdb))
    return out


def run_figure1a(max_endogenous: int = 6) -> list[dict]:
    """Execute and verify every implemented arrow of Figure 1a; return table rows."""
    rows: list[dict] = []
    for instance_name, query, pdb in _instances(max_endogenous):
        endo = sorted(pdb.endogenous)
        fact = endo[0]
        direct_fgmc = fgmc_vector(query, pdb, method="brute")
        direct_svc = get_engine(query, pdb, "brute").value_of(fact)

        # SVC ≤ FGMC (Proposition 3.3(3))
        counter = CallCounter(exact_fgmc_oracle("lineage"))
        value = svc_via_fgmc(query, pdb, fact, counter)
        rows.append({"arrow": "SVC ≤ FGMC", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": value == direct_svc})

        # FGMC ≤ SPPQE and SPPQE ≤ FGMC (Proposition 3.3(1))
        counter = CallCounter(exact_sppqe_oracle())
        vector = fgmc_via_sppqe(query, pdb, counter)
        rows.append({"arrow": "FGMC ≤ SPPQE", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": vector == direct_fgmc})
        p = Fraction(1, 3)
        tid = TupleIndependentDatabase.from_partitioned(pdb, p)
        direct_prob = probability_of_query(query, tid, method="brute")
        counter = CallCounter(exact_fgmc_oracle("lineage"))
        prob = sppqe_via_fgmc(query, pdb, p, counter)
        rows.append({"arrow": "SPPQE ≤ FGMC", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": prob == direct_prob})

        # FGMC ≤ SVC (Lemma 4.1; both catalog queries are connected and constant-free)
        counter = CallCounter(exact_svc_oracle("counting"))
        vector = fgmc_via_svc_lemma_4_1(query, pdb, counter)
        rows.append({"arrow": "FGMC ≤ SVC (Lemma 4.1)", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": vector == direct_fgmc})

        # FGMC ≤ max-SVC (Proposition 6.2)
        counter = CallCounter(exact_max_svc_oracle("counting"))
        vector = fgmc_via_max_svc(query, pdb, counter)
        rows.append({"arrow": "FGMC ≤ max-SVC (Prop 6.2)", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": vector == direct_fgmc})

        # FGMC ≤ FMC (Lemma 6.1) and SVCn ≤ FMC (Corollary 6.1)
        counter = CallCounter(lambda q, d: fmc_vector(q, d, method="lineage"))
        vector = fgmc_via_fmc(query, pdb, counter)
        rows.append({"arrow": "FGMC ≤ FMC (Lemma 6.1)", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": vector == direct_fgmc})

        endogenous_only = purely_endogenous(pdb.all_facts)
        direct_svcn = get_engine(query, endogenous_only, "brute").value_of(fact)
        counter = CallCounter(lambda q, d: fmc_vector(q, d, method="lineage"))
        value = svcn_via_fmc(query, endogenous_only, fact, counter)
        rows.append({"arrow": "SVCn ≤ FMC (Corollary 6.1)", "instance": instance_name,
                     "oracle calls": counter.calls, "verified": value == direct_svcn})
    return rows
