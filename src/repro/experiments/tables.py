"""Plain-text table rendering for the experiment drivers.

The benchmark harness prints the regenerated "tables/figures" as aligned text
so that EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: "Sequence[str] | None" = None,
                 title: str = "") -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, object]], columns: "Sequence[str] | None" = None,
                title: str = "") -> None:
    """Print a table rendered by :func:`format_table`."""
    print(format_table(rows, columns, title))
