"""A catalog of the queries named or used in the paper.

Each entry pairs a query object with the paper location it comes from and the
expected complexity verdict (when the paper states one).  The catalog drives
the Figure 1b experiment, the dichotomy tests and several examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dichotomy import Complexity
from ..data.atoms import atom
from ..data.terms import var
from ..queries.base import BooleanQuery
from ..queries.cq import ConjunctiveQuery, cq
from ..queries.crpq import crpq, path_atom
from ..queries.negation import ConjunctiveQueryWithNegation, FirstOrderNegationQuery, cq_with_negation
from ..queries.rpq import rpq
from ..queries.ucq import ucq

X, Y, Z, W, U = var("x"), var("y"), var("z"), var("w"), var("u")


@dataclass(frozen=True)
class CatalogEntry:
    """A named query together with its provenance in the paper."""

    name: str
    query: BooleanQuery
    query_class: str
    source: str
    expected: "Complexity | None" = None
    notes: str = ""


def q_rst() -> ConjunctiveQuery:
    """``q_RST = ∃x∃y R(x) ∧ S(x, y) ∧ T(y)`` — the canonical non-hierarchical sjf-CQ."""
    return cq(atom("R", X), atom("S", X, Y), atom("T", Y), name="q_RST")


def q_hierarchical() -> ConjunctiveQuery:
    """``∃x∃y R(x) ∧ S(x, y)`` — the canonical hierarchical (hence safe) sjf-CQ."""
    return cq(atom("R", X), atom("S", X, Y), name="q_hier")


def q_hierarchical_three_atoms() -> ConjunctiveQuery:
    """``∃x∃y R(x) ∧ S(x, y) ∧ S2(x, y)``-style hierarchical query with three atoms."""
    return cq(atom("R", X), atom("S", X, Y), atom("V", X, Y, Y), name="q_hier3")


def q_leak_example() -> ConjunctiveQuery:
    """The {a}-hom-closed query of Section 4.1's q-leak example.

    ``∃x∃y (A(x, y) ∧ B(y, a))`` — one disjunct of the CRPQ ``[AB + BA](x, a)``;
    the fact ``A(b, a)`` is a q-leak for it.
    """
    return cq(atom("A", X, Y), atom("B", Y, "a"), name="q_leak")


def q_shattering_example() -> ConjunctiveQuery:
    """Example E.1: ``R(x, y) ∧ S(a, x) ∧ S(x, a) ∧ T(x, z)`` (variable-connected, with constants)."""
    return cq(atom("R", X, Y), atom("S", "a", X), atom("S", X, "a"), atom("T", X, Z),
              name="q_shattering")


def q_star_publication() -> ConjunctiveQuery:
    """The query ``q*`` of Section 6.4 over Publication/Keyword."""
    return cq(atom("Publication", X, Y), atom("Keyword", Y, "Shapley"), name="q_star")


def q_disconnected_constants() -> ConjunctiveQuery:
    """``∃x∃y R(a, x) ∧ R(b, y)`` — decomposable but with no disjoint-vocabulary decomposition."""
    return cq(atom("R", "a", X), atom("R", "b", Y), name="q_two_roots")


def q_decomposable() -> ConjunctiveQuery:
    """``∃x∃y∃z R(x) ∧ U(y, z)`` — a decomposable (disjoint-vocabulary) constant-free CQ."""
    return cq(atom("R", X), atom("U", Y, Z), name="q_decomposable")


def q_decomposable_hard() -> ConjunctiveQuery:
    """``R(x) ∧ S(x, y) ∧ T(y) ∧ U(z, w)`` — decomposable with a non-hierarchical component."""
    return cq(atom("R", X), atom("S", X, Y), atom("T", Y), atom("U", Z, W), name="q_dec_hard")


def q_connected_ucq() -> "ucq":
    """A *safe* connected constant-free UCQ: ``(R(x) ∧ S(x, y)) ∨ (T(z) ∧ U(z, w))``.

    Each disjunct is connected and hierarchical, and the two disjuncts use
    disjoint relation names, so inclusion–exclusion plus independent joins give
    a safe plan.
    """
    return ucq(cq(atom("R", X), atom("S", X, Y)), cq(atom("T", Z), atom("U", Z, W)),
               name="q_conn_ucq")


def q_unsafe_connected_ucq() -> "ucq":
    """An *unsafe* connected constant-free UCQ: ``(R(x) ∧ S(x, y)) ∨ (S(x, y) ∧ T(y))``.

    This is the classic query ``H1`` of the PQE dichotomy [5]: each disjunct is
    hierarchical but the union is unsafe, hence #P-hard for PQE/GMC and — by
    Corollary 4.2(1) — for SVC.
    """
    return ucq(cq(atom("R", X), atom("S", X, Y)), cq(atom("S", X, Y), atom("T", Y)),
               name="q_unsafe_ucq")


def q_dss_ucq() -> "ucq":
    """``A(x) ∨ (R(x) ∧ S(x, y) ∧ T(y))`` — a duplicable-singleton-support query (Corollary 4.4)."""
    return ucq(cq(atom("A", X)), q_rst(), name="q_dss")


def rpq_short():
    """An RPQ with words of length ≤ 2 (FP side of Corollary 4.3)."""
    return rpq("A|B C", "a", "b", name="rpq_short")


def rpq_length_two():
    """``[A B](a, b)`` — longest word 2, still FP."""
    return rpq("A B", "a", "b", name="rpq_ab")


def rpq_length_three():
    """``[A B C](a, b)`` — a word of length 3, #P-hard (Corollary 4.3)."""
    return rpq("A B C", "a", "b", name="rpq_abc")


def rpq_star():
    """``[A B* C](a, b)`` — unbounded language containing words of length ≥ 3."""
    return rpq("A B* C", "a", "b", name="rpq_abstar")


def rpq_single_letter():
    """``[A](a, b)`` — a single fact suffices; trivially in FP."""
    return rpq("A", "a", "b", name="rpq_a")


def crpq_single_path_dss():
    """``∃x [A* B](a, x)`` — a CRPQ with a duplicable singleton support (Section 4.1)."""
    return crpq(path_atom("A* B", "a", X), name="crpq_dss")


def crpq_leak_example():
    """``∃x [A B | B A](x, a)`` — the q-leak example of Section 4.1."""
    return crpq(path_atom("(A B)|(B A)", X, "a"), name="crpq_leak")


def crpq_cc_disjoint_safe():
    """A constant-free cc-disjoint CRPQ expressible as a safe UCQ: ``[A](x, y) ∧ [B](z, w)``."""
    return crpq(path_atom("A", X, Y), path_atom("B", Z, W), name="crpq_ccd_safe")


def crpq_cc_disjoint_hard():
    """A constant-free cc-disjoint CRPQ whose UCQ expansion is unsafe: ``[A B C](x, y)``."""
    return crpq(path_atom("A B C", X, Y), name="crpq_ccd_hard")


def crpq_unbounded_connected():
    """A connected constant-free CRPQ with an unbounded language: ``[A B* C](x, y)``."""
    return crpq(path_atom("A B* C", X, Y), name="crpq_unbounded")


def q_negation_hierarchical() -> ConjunctiveQueryWithNegation:
    """A hierarchical sjf-CQ¬: ``R(x) ∧ S(x, y) ∧ ¬N(x, y)`` (FP by [12])."""
    return cq_with_negation([atom("R", X), atom("S", X, Y)], [atom("N", X, Y)],
                            name="qneg_hier")


def q_negation_hard() -> ConjunctiveQueryWithNegation:
    """A non-hierarchical sjf-CQ¬ with variable-connected positive part:
    ``R(x) ∧ S(x, y) ∧ T(y) ∧ ¬N(x, y)``."""
    return cq_with_negation([atom("R", X), atom("S", X, Y), atom("T", Y)],
                            [atom("N", X, Y)], name="qneg_hard")


def q_negation_basic_open() -> ConjunctiveQueryWithNegation:
    """``A(x) ∧ ¬S(x, y) ∧ B(y)`` — the non-hierarchical query NOT covered by Proposition 6.1."""
    return cq_with_negation([atom("A", X), atom("B", Y)], [atom("S", X, Y)], name="qneg_open")


def q_example_d1() -> FirstOrderNegationQuery:
    """Example D.1: ``∃x∃y D(x) ∧ S(x, y) ∧ A(y) ∧ ¬(B(y) ∧ ¬C(y))`` — its first-order form.

    We use the expanded disjunct ``D(x) ∧ S(x, y) ∧ A(y) ∧ ¬B(y)`` which is the
    part Lemma D.2 applies to (the full query is the union with the
    ``... ∧ C(y)`` disjunct).
    """
    return FirstOrderNegationQuery([atom("D", X), atom("S", X, Y), atom("A", Y)],
                                   [atom("B", Y)], name="q_D1")


def q_example_d2() -> FirstOrderNegationQuery:
    """Example D.2: ``∃x∃y S(x, y) ∧ ¬(A(x) ∧ B(y))``."""
    return FirstOrderNegationQuery([atom("S", X, Y)], [atom("A", X), atom("B", Y)],
                                   name="q_D2")


def full_catalog() -> list[CatalogEntry]:
    """The full catalog used by the Figure 1b experiment and the dichotomy tests."""
    return [
        CatalogEntry("q_RST", q_rst(), "sjf-CQ", "Corollary 4.3 proof / [11]",
                     Complexity.SHARP_P_HARD, "canonical non-hierarchical sjf-CQ"),
        CatalogEntry("q_hier", q_hierarchical(), "sjf-CQ", "[11], FP side",
                     Complexity.FP, "hierarchical"),
        CatalogEntry("q_hier3", q_hierarchical_three_atoms(), "sjf-CQ", "[11], FP side",
                     Complexity.FP, "hierarchical, 3 atoms"),
        CatalogEntry("q_decomposable", q_decomposable(), "CQ (constant-free)", "Section 4.2",
                     Complexity.FP, "decomposable, both components safe"),
        CatalogEntry("q_dec_hard", q_decomposable_hard(), "CQ (constant-free)", "Section 4.2",
                     Complexity.SHARP_P_HARD, "decomposable with a non-hierarchical component"),
        CatalogEntry("q_conn_ucq", q_connected_ucq(), "connected UCQ", "Corollary 4.2(1)",
                     Complexity.FP, "safe connected constant-free UCQ (disjoint vocabularies)"),
        CatalogEntry("q_unsafe_ucq", q_unsafe_connected_ucq(), "connected UCQ", "Corollary 4.2(1)",
                     Complexity.SHARP_P_HARD, "the H1 query of [5]: unsafe connected UCQ"),
        CatalogEntry("q_dss", q_dss_ucq(), "dss UCQ", "Corollary 4.4",
                     Complexity.SHARP_P_HARD, "duplicable singleton support, unsafe"),
        CatalogEntry("rpq_a", rpq_single_letter(), "RPQ", "Corollary 4.3",
                     Complexity.FP, "single-letter language"),
        CatalogEntry("rpq_ab", rpq_length_two(), "RPQ", "Corollary 4.3",
                     Complexity.FP, "longest word 2"),
        CatalogEntry("rpq_short", rpq_short(), "RPQ", "Corollary 4.3",
                     Complexity.FP, "words of length ≤ 2"),
        CatalogEntry("rpq_abc", rpq_length_three(), "RPQ", "Corollary 4.3",
                     Complexity.SHARP_P_HARD, "word of length 3"),
        CatalogEntry("rpq_abstar", rpq_star(), "RPQ", "Corollary 4.3",
                     Complexity.SHARP_P_HARD, "unbounded language"),
        CatalogEntry("crpq_ccd_safe", crpq_cc_disjoint_safe(), "cc-disjoint CRPQ", "Corollary 4.6",
                     Complexity.FP, "safe UCQ expansion"),
        CatalogEntry("crpq_ccd_hard", crpq_cc_disjoint_hard(), "cc-disjoint CRPQ", "Corollary 4.6",
                     Complexity.SHARP_P_HARD, "unsafe UCQ expansion"),
        CatalogEntry("crpq_unbounded", crpq_unbounded_connected(), "cc-disjoint CRPQ",
                     "Corollary 4.6 via [1]", Complexity.SHARP_P_HARD, "unbounded language"),
        CatalogEntry("qneg_hier", q_negation_hierarchical(), "sjf-CQ¬", "[12] / Section 6.2",
                     Complexity.FP, "hierarchical with negation"),
        CatalogEntry("qneg_hard", q_negation_hard(), "sjf-CQ¬", "[12] / Proposition 6.1",
                     Complexity.SHARP_P_HARD, "non-hierarchical, component-guarded negation"),
        CatalogEntry("qneg_open", q_negation_basic_open(), "sjf-CQ¬", "[12] / Section 6.2",
                     Complexity.SHARP_P_HARD, "non-hierarchical; not covered by Proposition 6.1"),
    ]


def catalog_by_name(name: str) -> CatalogEntry:
    """Look up a catalog entry by name."""
    for entry in full_catalog():
        if entry.name == name:
            return entry
    raise KeyError(f"no catalog entry named {name!r}")
